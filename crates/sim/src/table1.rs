//! Table I: comparison of multi-signature aggregation schemes
//! (0-omission probability, inclusiveness, incentive compatibility).

use crate::omission;
use iniva_gosig::GosigConfig;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scheme name.
    pub scheme: String,
    /// Analytic 0-omission probability as a formula string.
    pub omission_formula: String,
    /// Measured 0-omission probability at `m = 0.1`.
    pub measured_at_10pct: f64,
    /// Inclusive (Definition 4)?
    pub inclusive: bool,
    /// Incentive compatible (Definition 6)?
    pub incentive_compatible: bool,
}

/// Regenerates Table I, with the formula column from the paper and the
/// measured column from our Monte-Carlo simulations at `m = 0.1`.
pub fn table_1(trials: usize, seed: u64) -> Vec<Table1Row> {
    let m = 0.1;
    vec![
        Table1Row {
            scheme: "Star protocol".into(),
            omission_formula: "m".into(),
            measured_at_10pct: omission::star_omission_probability(111, m, trials, seed),
            inclusive: true,
            incentive_compatible: true,
        },
        Table1Row {
            scheme: "Gosig (k=2)".into(),
            omission_formula: "k-dependent".into(),
            measured_at_10pct: iniva_gosig::omission_probability(
                &GosigConfig::paper(2, m),
                0,
                trials,
                seed ^ 1,
            ),
            inclusive: false,
            incentive_compatible: false,
        },
        Table1Row {
            scheme: "Gosig (k=3)".into(),
            omission_formula: "k-dependent".into(),
            measured_at_10pct: iniva_gosig::omission_probability(
                &GosigConfig::paper(3, m),
                0,
                trials,
                seed ^ 2,
            ),
            inclusive: false,
            incentive_compatible: false,
        },
        Table1Row {
            scheme: "Iniva".into(),
            omission_formula: "m^2".into(),
            measured_at_10pct: omission::iniva_omission_probability(
                111,
                10,
                m,
                0,
                trials,
                seed ^ 3,
            ),
            inclusive: true,
            incentive_compatible: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_ordering() {
        let rows = table_1(20_000, 7);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.scheme.starts_with(name))
                .unwrap()
                .measured_at_10pct
        };
        let star = get("Star");
        let iniva = get("Iniva");
        assert!((star - 0.1).abs() < 0.01);
        assert!((iniva - 0.01).abs() < 0.01);
        assert!(iniva < star / 5.0);
    }

    #[test]
    fn only_iniva_and_star_are_inclusive_and_compatible() {
        for r in table_1(100, 1) {
            let expect = r.scheme.starts_with("Star") || r.scheme.starts_with("Iniva");
            assert_eq!(r.inclusive, expect, "{}", r.scheme);
            assert_eq!(r.incentive_compatible, expect, "{}", r.scheme);
        }
    }
}
