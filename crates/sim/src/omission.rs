//! Monte-Carlo targeted vote-omission experiments (Fig. 2a, Fig. 2b and the
//! Theorem 4 check).
//!
//! Iniva's committee is the paper's `n = 111` with fan-out 10 (a full
//! two-level tree); Gosig and the star baseline use `n = 100`.

use iniva::omission::{evaluate_attack, AttackOutcome};
use iniva_crypto::shuffle::Assignment;
use iniva_gosig::GosigConfig;
use iniva_tree::{Topology, TreeView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Estimates Iniva's c-omission probability by Monte-Carlo over random role
/// assignments (attackers, victim, previous leader, tree shuffle).
pub fn iniva_omission_probability(
    n: u32,
    internal: u32,
    m: f64,
    max_collateral: u32,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let topology = Topology::new(n, internal).expect("valid topology");
    let mut hits = 0usize;
    for _ in 0..trials {
        let mut ids: Vec<u32> = (0..n).collect();
        ids.shuffle(&mut rng);
        let attacker_count = (m * n as f64).round() as usize;
        let attackers: HashSet<u32> = ids[..attacker_count].iter().copied().collect();
        let victim = ids[attacker_count];
        // The previous leader L_v is the root of the previous (independent)
        // shuffle: uniform over the committee.
        let l_v = rng.gen_range(0..n);
        // Fresh random tree for this view.
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut rng);
        let tree = TreeView::with_assignment(topology, Assignment::from_permutation(perm), 0);
        if let AttackOutcome::Omitted { .. } =
            evaluate_attack(&tree, l_v, &attackers, victim, max_collateral)
        {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// The star baseline's c-omission probability: the attacker succeeds
/// whenever it holds the (round-robin ⇒ uniform) leader.
pub fn star_omission_probability(n: u32, m: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let attacker_count = (m * n as f64).round() as u32;
    let mut hits = 0usize;
    for _ in 0..trials {
        // Leader uniform; attacker holds `attacker_count` of n identities.
        if rng.gen_range(0..n) < attacker_count {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// One series of Fig. 2a/2b.
#[derive(Debug, Clone)]
pub struct OmissionSeries {
    /// Display label (matches the paper's legend).
    pub label: String,
    /// `(x, probability)` points; `x` is `m` for Fig. 2a and the collateral
    /// for Fig. 2b.
    pub points: Vec<(f64, f64)>,
}

/// Fig. 2a: 0-omission probability vs attacker power `m` for Gosig
/// (k ∈ {2,3}, with/without free-riding, greedy), the star baseline and
/// Iniva (n = 111, fan-out 10).
pub fn figure_2a(trials: usize, seed: u64) -> Vec<OmissionSeries> {
    let ms = [0.05, 0.10, 0.15];
    let gosig = |label: &str, k: usize, fr: f64, greedy: bool, salt: u64| OmissionSeries {
        label: label.to_string(),
        points: ms
            .iter()
            .map(|&m| {
                let cfg = GosigConfig {
                    free_riding: fr,
                    greedy,
                    ..GosigConfig::paper(k, m)
                };
                (
                    m,
                    iniva_gosig::omission_probability(&cfg, 0, trials, seed ^ salt),
                )
            })
            .collect(),
    };
    vec![
        gosig("Gosig k=2, no free-riding", 2, 0.0, false, 1),
        gosig("Gosig k=2, free-riding", 2, 0.3, false, 2),
        gosig("Gosig k=2, no free-riding, greedy", 2, 0.0, true, 3),
        gosig("Gosig k=3, no free-riding", 3, 0.0, false, 4),
        gosig("Gosig k=3, free-riding", 3, 0.3, false, 5),
        OmissionSeries {
            label: "Star protocol - round robin".into(),
            points: ms
                .iter()
                .map(|&m| (m, star_omission_probability(100, m, trials, seed ^ 6)))
                .collect(),
        },
        OmissionSeries {
            label: "Iniva".into(),
            points: ms
                .iter()
                .map(|&m| {
                    (
                        m,
                        iniva_omission_probability(111, 10, m, 0, trials, seed ^ 7),
                    )
                })
                .collect(),
        },
    ]
}

/// Fig. 2b: omission probability vs collateral budget at `m = 5%`.
pub fn figure_2b(trials: usize, seed: u64) -> Vec<OmissionSeries> {
    let m = 0.05;
    let collaterals: Vec<u32> = (0..=9).collect();
    let gosig = |label: &str, k: usize, fr: f64, salt: u64| OmissionSeries {
        label: label.to_string(),
        points: collaterals
            .iter()
            .map(|&c| {
                let cfg = GosigConfig {
                    free_riding: fr,
                    ..GosigConfig::paper(k, m)
                };
                (
                    c as f64,
                    iniva_gosig::omission_probability(&cfg, c, trials, seed ^ salt),
                )
            })
            .collect(),
    };
    vec![
        gosig("Gosig k=2, no free-riding", 2, 0.0, 11),
        gosig("Gosig k=3, no free-riding", 3, 0.0, 12),
        gosig("Gosig k=2, free-riding", 2, 0.3, 13),
        gosig("Gosig k=3, free-riding", 3, 0.3, 14),
        OmissionSeries {
            label: "Star protocol - round robin".into(),
            points: collaterals
                .iter()
                .map(|&c| {
                    (
                        c as f64,
                        star_omission_probability(100, m, trials, seed ^ 15),
                    )
                })
                .collect(),
        },
        OmissionSeries {
            label: "Iniva".into(),
            points: collaterals
                .iter()
                .map(|&c| {
                    (
                        c as f64,
                        iniva_omission_probability(111, 10, m, c, trials, seed ^ 16),
                    )
                })
                .collect(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem4_monte_carlo_matches_m_squared() {
        // Theorem 4: Iniva's 0-omission probability is m^2.
        for m in [0.1, 0.2, 0.3] {
            let p = iniva_omission_probability(111, 10, m, 0, 40_000, 99);
            let expect = m * m;
            assert!(
                (p - expect).abs() < 0.015,
                "m={m}: measured {p}, expected {expect}"
            );
        }
    }

    #[test]
    fn star_monte_carlo_matches_m() {
        let p = star_omission_probability(100, 0.1, 40_000, 5);
        assert!((p - 0.1).abs() < 0.01);
    }

    #[test]
    fn iniva_beats_star_by_an_order_of_magnitude_at_10pct() {
        // Paper abstract: "for an attacker controlling 10% of the processes,
        // the chances to omit an individual signature are reduced by a
        // factor of 10".
        let iniva = iniva_omission_probability(111, 10, 0.1, 0, 40_000, 3);
        let star = star_omission_probability(111, 0.1, 40_000, 3);
        assert!(star / iniva.max(1e-9) > 5.0, "star {star} vs iniva {iniva}");
    }

    #[test]
    fn collateral_has_little_effect_on_iniva_below_branch_size() {
        // Fig. 2b: with fan-out 10, collateral < 10 cannot buy a branch.
        let p0 = iniva_omission_probability(111, 10, 0.05, 0, 20_000, 21);
        let p9 = iniva_omission_probability(111, 10, 0.05, 9, 20_000, 21);
        assert!((p9 - p0).abs() < 0.01, "p0={p0} p9={p9}");
        // At collateral >= branch size the root alone suffices: probability
        // jumps towards m.
        let p10 = iniva_omission_probability(111, 10, 0.05, 10, 20_000, 21);
        assert!(p10 > p9 + 0.01, "p9={p9} p10={p10}");
    }

    #[test]
    fn figure_2a_series_have_expected_shape() {
        let series = figure_2a(2_000, 42);
        let find = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
        };
        let iniva = find("Iniva");
        let star = find("Star protocol - round robin");
        // Iniva below star everywhere.
        for ((_, pi), (_, ps)) in iniva.points.iter().zip(&star.points) {
            assert!(pi < ps);
        }
        // Free-riding above no-free-riding for k=2.
        let fr = find("Gosig k=2, free-riding");
        let nofr = find("Gosig k=2, no free-riding");
        let sum_fr: f64 = fr.points.iter().map(|p| p.1).sum();
        let sum_nofr: f64 = nofr.points.iter().map(|p| p.1).sum();
        assert!(sum_fr > sum_nofr);
    }
}
