//! # iniva-sim
//!
//! Experiment harnesses regenerating every table and figure of the Iniva
//! paper's evaluation:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`omission`] | Fig. 2a, Fig. 2b, Theorem 4 Monte-Carlo, Table I |
//! | [`reward_sim`] | Fig. 2c, Fig. 2d |
//! | [`perf`] | Fig. 3a (throughput/latency), 3b (CPU), 3c (scalability) |
//! | [`resilience`] | Fig. 4a–d |
//!
//! Each module exposes plain functions returning structured rows so the
//! `examples/paper_figures.rs` binary and the Criterion benches can print
//! the same series the paper plots. All experiments are deterministic for a
//! fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod omission;
pub mod perf;
pub mod resilience;
pub mod reward_sim;
pub mod table1;
