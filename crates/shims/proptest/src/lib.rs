//! Offline drop-in shim for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro over named `arg in strategy` bindings, the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `collection::vec` and `array::uniform{4,6}`,
//! plus `prop_assert*` / `prop_assume` and [`ProptestConfig`].
//!
//! Semantics: each property runs for `ProptestConfig::cases` random cases
//! drawn from a per-test deterministic seed. Failing cases panic with the
//! sampled inputs via the standard assertion message; there is no shrinking
//! (the real crate's minimization is a developer convenience, not part of
//! the checked property).

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategies: how to sample values of a type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of an output type.
    pub trait Strategy {
        /// The type of sampled values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            core::array::from_fn(|_| u8::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Any value of `T` (matching `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` with a length drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// The strategy returned by the `uniformN` constructors.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of independent draws from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_ctor!(uniform4 => 4, uniform6 => 6);
}

/// The common import surface (`proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// The `proptest!` expansion needs `rand` paths without requiring consumers
// to depend on it themselves.
#[doc(hidden)]
pub use rand as __rand;

/// Deterministic per-test seed derived from the test's name.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms (unlike DefaultHasher's
    // unspecified algorithm, which could change between std releases).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a property-scoped condition (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case (it is resampled, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0u32..10) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* } => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::__seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(100).max(1000),
                    "property {} rejected too many cases via prop_assume",
                    stringify!($name),
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )*
                #[allow(clippy::redundant_closure_call)]
                let __ran = (move || -> bool { $body true })();
                if __ran {
                    __accepted += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl crate::strategy::Strategy<Value = u64> {
        any::<u64>().prop_map(|v| v & !1)
    }

    proptest! {
        #[test]
        fn ranges_respected(a in 3u32..9, b in 0u64..=4, f in 0.5f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn named_strategy_fns_work(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn collections_and_arrays(v in collection::vec(any::<u8>(), 0..17),
                                  a in crate::array::uniform4(1u32..5)) {
            prop_assert!(v.len() < 17);
            prop_assert!(a.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn assume_rejects_without_counting(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_caps_cases(_x in 0u32..10) {
            // Runs exactly 5 cases; nothing to assert beyond not diverging.
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::__seed_for("a::b"), crate::__seed_for("a::c"));
    }
}
