//! Offline drop-in shim for the subset of the `criterion` API this
//! workspace uses: `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size`, and `Bencher::iter`.
//!
//! Measurement model: each benchmark runs one warm-up batch and then
//! `sample_size` timed batches, printing mean and min wall-clock time per
//! iteration. No statistics, plots or baselines — enough to compare costs
//! locally and to calibrate the simulator's `CostModel`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the shim's sample count already bounds runtime).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing extra).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up and per-iteration calibration: aim for ~20 ms per sample.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    b.iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut mean = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        f(&mut b);
        let per = b.elapsed / b.iters as u32;
        mean += per;
        best = best.min(per);
    }
    mean /= samples as u32;
    println!("  {name:<40} mean {mean:>12.2?}   min {best:>12.2?}");
}

/// Times closures for one benchmark sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group function: `criterion_group!(benches, bench_a, bench_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(demo_group, bench_demo);

    #[test]
    fn group_macro_produces_runnable_fn() {
        demo_group();
    }
}
