//! Offline drop-in shim for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng` (xoshiro256** instead of ChaCha12 — same API, different
//! stream), `SeedableRng`, `Rng::gen_range` over integer/float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The container building this repository has no crates.io access, so the
//! workspace provides its own deterministic PRNG behind the same names.
//! Statistical quality (xoshiro256**) is more than sufficient for the
//! Monte-Carlo experiments; every consumer seeds explicitly, so runs remain
//! bit-identical for a fixed seed, exactly as with the real crate.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Range types samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing randomness API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64` (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multiply-shift uniform draw in `0..bound` (`bound > 0`).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return lo + rng.next_u64() as $t;
                }
                lo + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * sample_unit_f64(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * sample_unit_f64(rng)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Drop-in stand-in for `rand::rngs::StdRng`: xoshiro256**, seeded the
    /// same way from either a 32-byte seed or a `u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            // Mix each lane through SplitMix64 so even degenerate seeds
            // (all-zero, single-bit) start from a well-mixed state.
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
                w ^= (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                *lane = splitmix64(&mut w);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut w = state;
            let mut s = [0u64; 4];
            for lane in &mut s {
                *lane = splitmix64(&mut w);
            }
            StdRng { s }
        }
    }
}

/// Slice helpers (subset of `rand::seq::SliceRandom`).
pub mod seq {
    use super::{sample_below, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[sample_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::from_seed([9u8; 32]);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
