//! Offline drop-in shim for the subset of the `bytes` crate this workspace
//! uses: [`Bytes`] (cheaply cloneable, sliceable, with an internal read
//! cursor driven through [`Buf`]), [`BytesMut`] (append buffer via
//! [`BufMut`]), and the two traits.
//!
//! The real crate separates buffers from cursors; the wire codec here only
//! ever consumes a `Bytes` front-to-back, so a single owned cursor over an
//! `Arc<[u8]>` window reproduces the API exactly where it is exercised.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Unread bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-range of the unread window.
    ///
    /// # Panics
    /// Panics if the range exceeds the buffer, as the real crate does.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Copies `len` bytes out into an owned [`Bytes`], advancing past them.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Fills `dst` from the cursor, advancing past the copied bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy: share the backing allocation.
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// A growable append-only byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(u64::MAX);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(b.len(), 6, "slicing must not disturb the parent");
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn oversized_slice_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
