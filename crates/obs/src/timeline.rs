//! Cross-replica view-timeline analysis: merges per-node trace dumps
//! onto one time axis and explains, view by view, where the time went.
//!
//! Dumps from one process share a `Runtime::with_epoch` zero and align
//! trivially. Dumps from separate processes (the TOML multi-process
//! mode) carry each node's wall-clock epoch instead, and wall clocks
//! can disagree; the merger therefore aligns in two steps — coarse, by
//! declared wall epoch, then refined by the median offset between
//! matching `Committed{height}` events against a reference node, which
//! cancels clock skew up to the (much smaller) commit-propagation
//! delay. The result is a per-view record of who led, when each
//! replica entered, when the proposal/QC/commits landed, and a budget
//! split of the view's wall time into network, verify and timer wait —
//! the decomposition the Carousel-collapse diagnosis needs.

use crate::json::{field_u64, parse_flat_object};
use crate::trace::{Event, EventKind, TimerKind};

/// One node's parsed trace dump.
#[derive(Debug, Clone)]
pub struct NodeDump {
    /// Replica id.
    pub node: u32,
    /// Wall-clock unix nanoseconds at this dump's `at == 0`.
    pub wall_epoch_unix_ns: u64,
    /// Events ever recorded by the tracer (ring may have shed some).
    pub recorded: u64,
    /// Events the ring shed.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

/// Parses a dump produced by `Tracer::dump_jsonl` (meta line + events).
///
/// # Errors
/// Names the offending line on any parse failure.
pub fn parse_dump(text: &str) -> Result<NodeDump, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, meta_line) = lines.next().ok_or("empty dump")?;
    let meta = parse_flat_object(meta_line).map_err(|e| format!("meta line: {e}"))?;
    if field_u64(&meta, "meta").is_err() {
        return Err("first line is not a dump meta record".into());
    }
    let mut dump = NodeDump {
        node: field_u64(&meta, "node")? as u32,
        wall_epoch_unix_ns: field_u64(&meta, "wall_epoch_unix_ns")?,
        recorded: field_u64(&meta, "recorded").unwrap_or(0),
        dropped: field_u64(&meta, "dropped").unwrap_or(0),
        events: Vec::new(),
    };
    for (idx, line) in lines {
        let ev = Event::from_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        dump.events.push(ev);
    }
    Ok(dump)
}

/// How a view ended, as far as the merged traces can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewOutcome {
    /// The cluster moved to the next view without a timeout.
    #[default]
    Advanced,
    /// Timed out with no replica ever seeing a proposal — a dead,
    /// partitioned or never-scheduled leader; the whole view is timer
    /// burn.
    FailedNoProposal,
    /// A proposal circulated but no QC formed before the timeout.
    FailedNoQuorum,
    /// A QC formed and the view still timed out somewhere.
    FailedAfterQc,
    /// The trace window ends inside this view.
    Unknown,
}

/// Where one view's wall time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewBudget {
    /// Full span of the view (first entry to first entry of the next).
    pub span_ns: u64,
    /// Proposal propagation: leader send to median receipt.
    pub network_ns: u64,
    /// Signature verification (max of wall and modeled-charge sums).
    pub verify_ns: u64,
    /// Everything else — aggregation-timer wait, second-chance wait,
    /// and for proposal-less views the entire view-timeout burn.
    pub timer_ns: u64,
}

/// One view of the merged timeline (times in ns on the reference axis).
#[derive(Debug, Clone, Default)]
pub struct ViewRecord {
    /// The view number.
    pub view: u64,
    /// Majority opinion of the view's leader among replicas that
    /// entered it.
    pub leader: Option<u32>,
    /// `(node, at)` for every replica's entry into the view.
    pub entered: Vec<(u32, i64)>,
    /// When the leader broadcast, if traced.
    pub proposal_sent: Option<i64>,
    /// `(node, at)` proposal receipts.
    pub proposal_seen: Vec<(u32, i64)>,
    /// Earliest QC assembly.
    pub qc_at: Option<i64>,
    /// `(node, at, height)` commits observed during the view.
    pub commits: Vec<(u32, i64, u64)>,
    /// `(node, at)` view-timer expiries.
    pub timeouts: Vec<(u32, i64)>,
    /// Summed wall-clock verification ns across nodes.
    pub verify_wall_ns: u64,
    /// Summed modeled (charged) verification ns across nodes.
    pub verify_charged_ns: u64,
    /// Verified share batches.
    pub verify_batches: u32,
    /// Second-chance rounds opened.
    pub second_chances: u32,
    /// End of the view on the reference axis (first entry into the
    /// next observed view, or the last event of this one).
    pub end: i64,
    /// Classification of how the view ended.
    pub outcome: ViewOutcome,
}

impl ViewRecord {
    /// First replica's entry time, if any replica entered.
    pub fn start(&self) -> Option<i64> {
        self.entered.iter().map(|&(_, at)| at).min()
    }

    /// Splits the view's span into network / verify / timer.
    pub fn budget(&self) -> ViewBudget {
        let Some(start) = self.start() else {
            return ViewBudget::default();
        };
        let span_ns = (self.end - start).max(0) as u64;
        let verify_ns = self.verify_wall_ns.max(self.verify_charged_ns).min(span_ns);
        let network_ns = match (self.proposal_sent, median_recv(&self.proposal_seen)) {
            (Some(sent), Some(recv)) => (recv - sent).max(0) as u64,
            _ => 0,
        }
        .min(span_ns.saturating_sub(verify_ns));
        ViewBudget {
            span_ns,
            network_ns,
            verify_ns,
            timer_ns: span_ns - network_ns - verify_ns,
        }
    }
}

fn median_recv(seen: &[(u32, i64)]) -> Option<i64> {
    if seen.is_empty() {
        return None;
    }
    let mut ats: Vec<i64> = seen.iter().map(|&(_, at)| at).collect();
    ats.sort_unstable();
    Some(ats[ats.len() / 2])
}

fn median_i64(mut v: Vec<i64>) -> Option<i64> {
    if v.is_empty() {
        return None;
    }
    v.sort_unstable();
    Some(v[v.len() / 2])
}

/// The merged cross-replica timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Replicas that contributed a dump, ascending.
    pub nodes: Vec<u32>,
    /// Per-node alignment offsets applied (ns added to that node's
    /// timestamps to land on the reference axis), ascending by node.
    pub offsets_ns: Vec<(u32, i64)>,
    /// Views in ascending order.
    pub views: Vec<ViewRecord>,
    /// Committed events per node, ascending by node.
    pub per_node_commits: Vec<(u32, u64)>,
    /// Events shed by any ring (coverage warning when nonzero).
    pub dropped_events: u64,
}

impl Timeline {
    /// Merges per-node dumps onto the reference axis (see module docs
    /// for the two-step alignment).
    pub fn merge(dumps: &[NodeDump]) -> Timeline {
        let mut dumps: Vec<&NodeDump> = dumps.iter().collect();
        dumps.sort_by_key(|d| d.node);
        let Some(reference) = dumps
            .iter()
            .max_by_key(|d| (d.events.len(), std::cmp::Reverse(d.node)))
        else {
            return Timeline::default();
        };

        // Commit anchor table of the reference node: height -> at.
        let ref_commits: Vec<(u64, i64)> = reference
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Committed { height, .. } => Some((height, e.at as i64)),
                _ => None,
            })
            .collect();

        let mut offsets = Vec::new();
        for d in &dumps {
            // Coarse: declared wall epochs.
            let coarse = d.wall_epoch_unix_ns as i64 - reference.wall_epoch_unix_ns as i64;
            // Refined: median residual over matching committed heights.
            let residuals: Vec<i64> = d
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Committed { height, .. } => ref_commits
                        .iter()
                        .find(|&&(h, _)| h == height)
                        .map(|&(_, ref_at)| (e.at as i64 + coarse) - ref_at),
                    _ => None,
                })
                .collect();
            let refine = if residuals.len() >= 3 {
                median_i64(residuals).unwrap_or(0)
            } else {
                0
            };
            offsets.push((d.node, coarse - refine));
        }

        // Bucket aligned events per view.
        let mut views: std::collections::BTreeMap<u64, ViewRecord> = Default::default();
        let mut leader_votes: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        let mut failed_entries: std::collections::BTreeMap<u64, bool> = Default::default();
        let mut per_node_commits = Vec::new();
        let mut dropped_events = 0;
        for d in &dumps {
            let off = offsets
                .iter()
                .find(|&&(n, _)| n == d.node)
                .map(|&(_, o)| o)
                .unwrap_or(0);
            dropped_events += d.dropped;
            let mut commits = 0u64;
            for ev in &d.events {
                let at = ev.at as i64 + off;
                match &ev.kind {
                    EventKind::ViewEntered {
                        view,
                        leader,
                        failed,
                    } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.entered.push((d.node, at));
                        leader_votes.entry(*view).or_default().push(*leader);
                        if *failed && *view > 0 {
                            *failed_entries.entry(*view - 1).or_default() = true;
                        }
                    }
                    EventKind::TimerFired { view, kind } => {
                        if *kind == TimerKind::View {
                            let r = views.entry(*view).or_default();
                            r.view = *view;
                            r.timeouts.push((d.node, at));
                        }
                    }
                    EventKind::ProposalSent { view, .. } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.proposal_sent = Some(r.proposal_sent.map_or(at, |prev| prev.min(at)));
                    }
                    EventKind::ProposalReceived { view, .. } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.proposal_seen.push((d.node, at));
                    }
                    EventKind::VerifyBatch {
                        view,
                        wall_ns,
                        charged_ns,
                        ..
                    } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.verify_wall_ns += wall_ns;
                        r.verify_charged_ns += charged_ns;
                        r.verify_batches += 1;
                    }
                    EventKind::SecondChance { view, .. } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.second_chances += 1;
                    }
                    EventKind::QcFormed { view, .. } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.qc_at = Some(r.qc_at.map_or(at, |prev| prev.min(at)));
                    }
                    EventKind::Committed { view, height } => {
                        let r = views.entry(*view).or_default();
                        r.view = *view;
                        r.commits.push((d.node, at, *height));
                        commits += 1;
                    }
                    EventKind::FaultInjected { .. }
                    | EventKind::WalFsync { .. }
                    | EventKind::StateChunk { .. }
                    | EventKind::TimeoutSent { .. }
                    | EventKind::TimeoutQcAdopted { .. }
                    | EventKind::IngressBatch { .. } => {}
                }
            }
            per_node_commits.push((d.node, commits));
        }

        // Close out each view: end time and outcome.
        let ordered: Vec<u64> = views.keys().copied().collect();
        for (i, v) in ordered.iter().enumerate() {
            let next_start = ordered
                .get(i + 1)
                .and_then(|nv| views.get(nv).and_then(|r| r.start()));
            let r = views.get_mut(v).expect("key enumerated from map");
            let last_own = r
                .entered
                .iter()
                .chain(r.proposal_seen.iter())
                .chain(r.timeouts.iter())
                .map(|&(_, at)| at)
                .chain(r.commits.iter().map(|&(_, at, _)| at))
                .chain(r.qc_at)
                .chain(r.proposal_sent)
                .max()
                .unwrap_or(0);
            r.end = next_start.unwrap_or(last_own);
            let failed = failed_entries.get(v).copied().unwrap_or(false) || !r.timeouts.is_empty();
            r.leader = leader_majority(leader_votes.get(v));
            r.outcome = if failed {
                if r.proposal_sent.is_none() && r.proposal_seen.is_empty() {
                    ViewOutcome::FailedNoProposal
                } else if r.qc_at.is_none() {
                    ViewOutcome::FailedNoQuorum
                } else {
                    ViewOutcome::FailedAfterQc
                }
            } else if ordered.get(i + 1).is_some() {
                ViewOutcome::Advanced
            } else {
                ViewOutcome::Unknown
            };
        }

        Timeline {
            nodes: dumps.iter().map(|d| d.node).collect(),
            offsets_ns: offsets,
            views: views.into_values().collect(),
            per_node_commits,
            dropped_events,
        }
    }

    /// Aggregated accounting over the whole run.
    pub fn summary(&self) -> TimelineSummary {
        let mut s = TimelineSummary {
            nodes: self.nodes.clone(),
            per_node_commits: self.per_node_commits.clone(),
            dropped_events: self.dropped_events,
            ..Default::default()
        };
        for r in &self.views {
            let b = r.budget();
            s.views_total += 1;
            s.commits += r.commits.len() as u64;
            match r.outcome {
                ViewOutcome::Advanced | ViewOutcome::Unknown => {
                    s.advanced_budget.add(b);
                }
                ViewOutcome::FailedNoProposal => {
                    s.views_failed += 1;
                    s.failed_no_proposal += 1;
                    s.failed_budget.add(b);
                }
                ViewOutcome::FailedNoQuorum => {
                    s.views_failed += 1;
                    s.failed_no_quorum += 1;
                    s.failed_budget.add(b);
                }
                ViewOutcome::FailedAfterQc => {
                    s.views_failed += 1;
                    s.failed_after_qc += 1;
                    s.failed_budget.add(b);
                }
            }
        }
        s
    }
}

fn leader_majority(votes: Option<&Vec<u32>>) -> Option<u32> {
    let votes = votes?;
    let mut counts: std::collections::BTreeMap<u32, usize> = Default::default();
    for &v in votes {
        *counts.entry(v).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(leader, _)| leader)
}

/// Summed [`ViewBudget`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSum {
    /// Total span.
    pub span_ns: u64,
    /// Total network share.
    pub network_ns: u64,
    /// Total verify share.
    pub verify_ns: u64,
    /// Total timer share.
    pub timer_ns: u64,
}

impl BudgetSum {
    fn add(&mut self, b: ViewBudget) {
        self.span_ns += b.span_ns;
        self.network_ns += b.network_ns;
        self.verify_ns += b.verify_ns;
        self.timer_ns += b.timer_ns;
    }
}

/// Run-level accounting produced by [`Timeline::summary`].
#[derive(Debug, Clone, Default)]
pub struct TimelineSummary {
    /// Replicas that contributed dumps.
    pub nodes: Vec<u32>,
    /// Views observed.
    pub views_total: u64,
    /// Views that ended in a timeout.
    pub views_failed: u64,
    /// Failed views where no proposal was ever observed.
    pub failed_no_proposal: u64,
    /// Failed views where a proposal circulated but no QC formed.
    pub failed_no_quorum: u64,
    /// Failed views despite a formed QC.
    pub failed_after_qc: u64,
    /// Commit events across all nodes.
    pub commits: u64,
    /// `(node, commits)` ascending by node.
    pub per_node_commits: Vec<(u32, u64)>,
    /// Time accounting over views that advanced.
    pub advanced_budget: BudgetSum,
    /// Time accounting over views that failed.
    pub failed_budget: BudgetSum,
    /// Ring-shed events across dumps (nonzero = partial coverage).
    pub dropped_events: u64,
}

impl TimelineSummary {
    /// A human-readable report of the accounting.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        let total_span = self.advanced_budget.span_ns + self.failed_budget.span_ns;
        let mut out = String::new();
        out.push_str(&format!(
            "views: {} total, {} failed ({:.1}%)\n",
            self.views_total,
            self.views_failed,
            pct(self.views_failed, self.views_total),
        ));
        out.push_str(&format!(
            "time: {:.1} ms traced, {:.1} ms ({:.1}%) inside failed views\n",
            ms(total_span),
            ms(self.failed_budget.span_ns),
            pct(self.failed_budget.span_ns, total_span),
        ));
        out.push_str(&format!(
            "failed-view causes: {} no-proposal (dead leader), {} no-quorum, {} after-QC\n",
            self.failed_no_proposal, self.failed_no_quorum, self.failed_after_qc,
        ));
        let fb = self.failed_budget;
        out.push_str(&format!(
            "failed-view budget: timer {:.1} ms ({:.1}%), network {:.1} ms, verify {:.1} ms\n",
            ms(fb.timer_ns),
            pct(fb.timer_ns, fb.span_ns.max(1)),
            ms(fb.network_ns),
            ms(fb.verify_ns),
        ));
        let ab = self.advanced_budget;
        out.push_str(&format!(
            "advanced-view budget: timer {:.1} ms ({:.1}%), network {:.1} ms, verify {:.1} ms\n",
            ms(ab.timer_ns),
            pct(ab.timer_ns, ab.span_ns.max(1)),
            ms(ab.network_ns),
            ms(ab.verify_ns),
        ));
        out.push_str(&format!("commits observed: {} (", self.commits));
        for (i, (n, c)) in self.per_node_commits.iter().enumerate() {
            out.push_str(&format!("{}n{n}:{c}", if i > 0 { " " } else { "" }));
        }
        out.push_str(")\n");
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "warning: {} events shed by full rings — coverage is partial\n",
                self.dropped_events
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a dump where node enters views 0..n at `view * view_ms`,
    /// the leader (view % 3) proposes 1 ms in, everyone sees it 2 ms
    /// in, QC at 5 ms, commit of height view at 6 ms.
    fn scripted_dump(node: u32, wall_epoch: u64, views: u64, skew_ns: u64) -> NodeDump {
        const MS: u64 = 1_000_000;
        let mut events = Vec::new();
        for v in 0..views {
            let t0 = v * 20 * MS + skew_ns;
            events.push(Event {
                at: t0,
                kind: EventKind::ViewEntered {
                    view: v,
                    leader: (v % 3) as u32,
                    failed: false,
                },
            });
            if node == (v % 3) as u32 {
                events.push(Event {
                    at: t0 + MS,
                    kind: EventKind::ProposalSent {
                        view: v,
                        height: v + 1,
                        txs: 10,
                    },
                });
            }
            events.push(Event {
                at: t0 + 2 * MS,
                kind: EventKind::ProposalReceived {
                    view: v,
                    height: v + 1,
                    leader: (v % 3) as u32,
                },
            });
            events.push(Event {
                at: t0 + 5 * MS,
                kind: EventKind::VerifyBatch {
                    view: v,
                    items: 3,
                    wall_ns: MS,
                    charged_ns: 0,
                },
            });
            if v >= 2 {
                events.push(Event {
                    at: t0 + 6 * MS,
                    kind: EventKind::Committed {
                        view: v,
                        height: v - 1,
                    },
                });
            }
        }
        NodeDump {
            node,
            wall_epoch_unix_ns: wall_epoch,
            recorded: events.len() as u64,
            dropped: 0,
            events,
        }
    }

    #[test]
    fn dump_roundtrips_through_jsonl() {
        use crate::trace::Tracer;
        let t = Tracer::new(3, 64);
        t.emit(
            9,
            EventKind::ViewEntered {
                view: 1,
                leader: 0,
                failed: true,
            },
        );
        t.emit(11, EventKind::QcFormed { view: 1, height: 4 });
        let dump = parse_dump(&t.dump_jsonl()).unwrap();
        assert_eq!(dump.node, 3);
        assert_eq!(dump.recorded, 2);
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[1].at, 11);
        assert!(parse_dump("").is_err());
        assert!(parse_dump("{\"at\": 1}").is_err(), "meta line required");
    }

    #[test]
    fn merge_aligns_same_epoch_dumps() {
        let e = 1_700_000_000_000_000_000;
        let dumps: Vec<NodeDump> = (0..3).map(|n| scripted_dump(n, e, 6, 0)).collect();
        let tl = Timeline::merge(&dumps);
        assert_eq!(tl.nodes, vec![0, 1, 2]);
        assert!(tl.offsets_ns.iter().all(|&(_, o)| o == 0));
        assert_eq!(tl.views.len(), 6);
        let v3 = tl.views.iter().find(|r| r.view == 3).unwrap();
        assert_eq!(v3.leader, Some(0));
        assert_eq!(v3.entered.len(), 3);
        assert_eq!(v3.outcome, ViewOutcome::Advanced);
        assert!(v3.proposal_sent.is_some());
        let b = v3.budget();
        assert_eq!(b.span_ns, 20_000_000, "views are 20 ms apart");
        assert_eq!(b.network_ns, 1_000_000, "send at +1ms, receipt at +2ms");
        assert_eq!(b.verify_ns, 3_000_000, "three nodes, 1 ms each");
        assert_eq!(b.timer_ns, 16_000_000);
        let s = tl.summary();
        assert_eq!(s.views_failed, 0);
        assert_eq!(s.commits, 4 * 3);
        assert!(s.render().contains("0 failed"));
    }

    #[test]
    fn merge_cancels_wall_clock_skew_via_commit_anchors() {
        let e = 1_700_000_000_000_000_000u64;
        const MS: u64 = 1_000_000;
        // Node 1's wall clock runs 250 ms fast: its declared epoch is
        // late by 250 ms while its events describe the same real
        // moments. Node 2's clock is 40 ms slow. With ≥3 common commit
        // heights the refinement should cancel both.
        let dumps = vec![
            scripted_dump(0, e, 8, 0),
            scripted_dump(1, e + 250 * MS, 8, 0),
            scripted_dump(2, e.saturating_sub(40 * MS), 8, 0),
        ];
        let tl = Timeline::merge(&dumps);
        let off: std::collections::BTreeMap<u32, i64> = tl.offsets_ns.iter().copied().collect();
        assert_eq!(off[&0], 0);
        assert_eq!(off[&1], 0, "skew fully cancelled by commit anchors");
        assert_eq!(off[&2], 0);
        // Every view's entries must therefore coincide across nodes.
        for r in &tl.views {
            let ats: Vec<i64> = r.entered.iter().map(|&(_, at)| at).collect();
            let spread = ats.iter().max().unwrap() - ats.iter().min().unwrap();
            assert_eq!(spread, 0, "view {} entries misaligned", r.view);
        }
    }

    #[test]
    fn failed_views_classified_and_budgeted_as_timer_burn() {
        let e = 1_700_000_000_000_000_000u64;
        const MS: u64 = 1_000_000;
        // Node 0 and 1 enter view 0, see nothing, time out after 400 ms
        // and enter view 1 flagged failed; view 1 advances normally.
        let mk = |node: u32| {
            let mut events = vec![Event {
                at: 0,
                kind: EventKind::ViewEntered {
                    view: 0,
                    leader: 2,
                    failed: false,
                },
            }];
            events.push(Event {
                at: 400 * MS,
                kind: EventKind::TimerFired {
                    view: 0,
                    kind: TimerKind::View,
                },
            });
            events.push(Event {
                at: 400 * MS + 1,
                kind: EventKind::ViewEntered {
                    view: 1,
                    leader: 0,
                    failed: true,
                },
            });
            NodeDump {
                node,
                wall_epoch_unix_ns: e,
                recorded: events.len() as u64,
                dropped: 3,
                events,
            }
        };
        let tl = Timeline::merge(&[mk(0), mk(1)]);
        let v0 = tl.views.iter().find(|r| r.view == 0).unwrap();
        assert_eq!(v0.outcome, ViewOutcome::FailedNoProposal);
        assert_eq!(v0.leader, Some(2), "the dead leader is still named");
        let b = v0.budget();
        assert_eq!(b.span_ns, 400 * MS + 1);
        assert_eq!(
            b.timer_ns, b.span_ns,
            "proposal-less view is pure timer burn"
        );
        let s = tl.summary();
        assert_eq!(s.views_failed, 1);
        assert_eq!(s.failed_no_proposal, 1);
        assert_eq!(s.dropped_events, 6);
        assert!(
            s.render().contains("warning"),
            "shed events must be called out"
        );
    }
}
