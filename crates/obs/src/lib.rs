//! Observability for the Iniva reproduction: metrics, tracing, and
//! cross-replica timeline analysis — with no dependencies, because the
//! workspace builds offline.
//!
//! Three layers, from hot to cold:
//!
//! 1. [`metrics`] — a name-keyed [`Registry`] of counters, gauges and
//!    fixed-bucket latency [`Histogram`]s. Registration locks once;
//!    every subsequent update is a relaxed atomic on a kept handle, so
//!    instrumenting a per-message path costs a few atomic adds.
//! 2. [`trace`] — a bounded per-replica ring of structured consensus
//!    events ([`EventKind`]): view entries and timeouts, proposals,
//!    verify batches, QCs, commits, faults, WAL fsyncs, state-transfer
//!    chunks. Disabled by default; a disabled [`Tracer`] turns every
//!    emit into one branch and never runs the event-building closure.
//! 3. [`timeline`] — merges per-node JSONL dumps onto the shared
//!    runtime epoch (correcting wall-clock skew against commit
//!    anchors) into a per-view [`Timeline`]: who led, who entered
//!    when, and where the view's Δ budget went — network, verify, or
//!    timer wait.
//!
//! The `view_timeline` binary in `crates/bench` is the command-line
//! face of layer 3; `live_cluster --metrics-dir` and the resilience
//! bench produce its inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod timeline;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use timeline::{NodeDump, Timeline, TimelineSummary, ViewOutcome, ViewRecord};
pub use trace::{Event, EventKind, TimerKind, Tracer};
