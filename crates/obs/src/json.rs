//! A minimal flat-JSON reader for the observability dump formats.
//!
//! Every line the obs layer writes — registry snapshots, trace events,
//! dump metadata — is one flat JSON object whose values are unsigned
//! integers, booleans or strings. This parser accepts exactly that
//! subset (the workspace builds offline, so there is no serde to reach
//! for) and rejects anything else with a descriptive error rather than
//! guessing.

/// A scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonVal {
    /// An unsigned integer (the only number form the dumps emit).
    Num(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escapes limited to `\"` and `\\`).
    Str(String),
}

impl JsonVal {
    /// The numeric value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k": 1, "s": "x", "b": true}`) into
/// key/value pairs, preserving order.
///
/// # Errors
/// Returns a description of the first syntax problem: nested containers,
/// floats, negative numbers and trailing garbage are all rejected.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            out.push((key, val));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at {}", p.pos));
    }
    Ok(out)
}

/// Convenience: the value of `key` in `pairs` as a u64, or an error
/// naming the missing/mistyped field.
pub fn field_u64(pairs: &[(String, JsonVal)], key: &str) -> Result<u64, String> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// Writes a JSON string literal (escaping `"` `\` and control bytes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) => s.push(b as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.literal("false", JsonVal::Bool(false)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err("floats are not part of the dump format".into());
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(JsonVal::Num)
                    .ok_or_else(|| "number out of u64 range".into())
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, val: JsonVal) -> Result<JsonVal, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("expected literal {word:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_dump_subset() {
        let pairs =
            parse_flat_object(r#"{"at": 12, "k": "view_entered", "failed": true, "s": "a\"b"}"#)
                .unwrap();
        assert_eq!(pairs[0], ("at".into(), JsonVal::Num(12)));
        assert_eq!(pairs[1].1.as_str(), Some("view_entered"));
        assert_eq!(pairs[2].1.as_bool(), Some(true));
        assert_eq!(pairs[3].1.as_str(), Some("a\"b"));
        assert_eq!(field_u64(&pairs, "at"), Ok(12));
        assert!(field_u64(&pairs, "nope").is_err());
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn rejects_what_the_dumps_never_write() {
        for bad in [
            "{\"a\": 1.5}",
            "{\"a\": -1}",
            "{\"a\": [1]}",
            "{\"a\": {\"b\": 1}}",
            "{\"a\": 1} trailing",
            "{\"a\" 1}",
            "not json",
            "{\"a\": nul}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn string_escaping_roundtrips() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        let line = format!("{{\"s\": {out}}}");
        let pairs = parse_flat_object(&line).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some("a\"b\\c\nd"));
    }
}
