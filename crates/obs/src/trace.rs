//! Structured consensus event tracing: a bounded, per-replica ring
//! buffer of timestamped events, dumpable as JSONL.
//!
//! The tracer is **disabled by default and free when disabled**: a
//! disabled [`Tracer`] is a `None` and every emit call reduces to one
//! branch — no allocation, no lock, no clock read. Call sites whose
//! event payloads cost anything to build go through [`Tracer::emit_with`]
//! so the closure is never invoked unless tracing is on (the tier-1
//! tests assert this with a counting closure). When enabled, the ring
//! keeps the most recent `cap` events and counts what it sheds, so a
//! flood degrades coverage — never memory.
//!
//! Timestamps are nanoseconds on the node's runtime axis: virtual time
//! in simulation, time since the shared [`Runtime::with_epoch`] zero in
//! live clusters (`Runtime` propagates its epoch via [`Tracer::live`]).
//! Each dump carries the wall-clock instant its axis zero corresponds
//! to, which is what lets the timeline analyzer merge dumps from
//! separate processes whose epochs differ.
//!
//! [`Runtime::with_epoch`]: ../../iniva_transport/struct.Runtime.html

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

use crate::json::push_json_str;

/// Which consensus timer fired (mirrors `core::protocol`'s timer kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// The view timer — firing means the view failed.
    View,
    /// An aggregation wait timer at an internal/root node.
    Agg,
    /// The second-chance collection timer at the root.
    SecondChance,
}

impl TimerKind {
    fn tag(self) -> &'static str {
        match self {
            TimerKind::View => "view",
            TimerKind::Agg => "agg",
            TimerKind::SecondChance => "sc",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "view" => TimerKind::View,
            "agg" => TimerKind::Agg,
            "sc" => TimerKind::SecondChance,
            _ => return None,
        })
    }
}

/// One traced consensus/runtime occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The replica moved into `view` (whose leader it computed locally);
    /// `failed` is true when the previous view ended by timeout.
    ViewEntered {
        /// The view being entered.
        view: u64,
        /// The leader this replica expects for the view.
        leader: u32,
        /// Whether the previous view timed out rather than committed.
        failed: bool,
    },
    /// A protocol timer fired.
    TimerFired {
        /// View the timer belonged to.
        view: u64,
        /// Which timer.
        kind: TimerKind,
    },
    /// The leader broadcast a proposal.
    ProposalSent {
        /// Proposing view.
        view: u64,
        /// Block height proposed.
        height: u64,
        /// Requests batched into the block.
        txs: u32,
    },
    /// A replica received (and accepted for processing) a proposal.
    ProposalReceived {
        /// View of the proposal.
        view: u64,
        /// Block height.
        height: u64,
        /// Sender (the view's leader).
        leader: u32,
    },
    /// A batch of vote shares was verified (tree fold or root fold).
    VerifyBatch {
        /// View being aggregated.
        view: u64,
        /// Shares in the batch.
        items: u32,
        /// Wall-clock nanoseconds the verification took (real crypto
        /// cost; ~0 for the simulated scheme).
        wall_ns: u64,
        /// Modeled CPU nanoseconds charged to the runtime for the batch
        /// (the simulated scheme's cost; 0 under `tune_for_real_crypto`).
        charged_ns: u64,
    },
    /// The root opened a second-chance round for missing subtrees.
    SecondChance {
        /// View.
        view: u64,
        /// Replicas being offered the second chance.
        missing: u32,
    },
    /// A quorum certificate was assembled at the root.
    QcFormed {
        /// View certified.
        view: u64,
        /// Height certified.
        height: u64,
    },
    /// A block became committed under the three-chain rule.
    Committed {
        /// View in which the commit was observed.
        view: u64,
        /// Committed height.
        height: u64,
    },
    /// A chaos-plan fault was injected on this node's runtime.
    FaultInjected {
        /// Human-readable fault description (`"crash"`, `"partition"`...).
        what: String,
    },
    /// The write-ahead log completed an fsync'd append.
    WalFsync {
        /// Wall-clock nanoseconds the write+fsync took.
        wall_ns: u64,
        /// Bytes appended.
        bytes: u64,
    },
    /// A state-transfer chunk of committed blocks was adopted.
    StateChunk {
        /// Peer that served the chunk.
        from: u32,
        /// Blocks adopted from it.
        blocks: u64,
    },
    /// This replica's view timed out and it broadcast a TIMEOUT message
    /// carrying its high QC (the HotStuff-style new-view exchange).
    TimeoutSent {
        /// The view that timed out.
        view: u64,
        /// View of the carried high QC (0 when the replica has none yet).
        high_qc_view: u64,
    },
    /// A QC carried by a peer's TIMEOUT message verified and was adopted,
    /// converging this replica's leader-election state with the sender's.
    TimeoutQcAdopted {
        /// The timed-out view the peer announced.
        view: u64,
        /// View of the adopted QC.
        qc_view: u64,
    },
    /// The proposer drafted a batch of admitted client requests out of
    /// the ingress mempool (live ingress only; the synthetic workload
    /// shows up in `ProposalSent.txs` instead).
    IngressBatch {
        /// First request sequence number claimed.
        start: u64,
        /// Requests drafted into the block.
        len: u32,
        /// Entries still queued in the mempool after the draft.
        depth: u64,
    },
}

/// A timestamped [`EventKind`] on the node's runtime time axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the node's time zero (virtual in sim, the
    /// shared runtime epoch in live clusters).
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes as one flat JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"at\": {}, \"k\": ", self.at);
        match &self.kind {
            EventKind::ViewEntered {
                view,
                leader,
                failed,
            } => {
                s.push_str(&format!(
                    "\"view_entered\", \"view\": {view}, \"leader\": {leader}, \"failed\": {failed}"
                ));
            }
            EventKind::TimerFired { view, kind } => {
                s.push_str(&format!(
                    "\"timer_fired\", \"view\": {view}, \"timer\": \"{}\"",
                    kind.tag()
                ));
            }
            EventKind::ProposalSent { view, height, txs } => {
                s.push_str(&format!(
                    "\"proposal_sent\", \"view\": {view}, \"height\": {height}, \"txs\": {txs}"
                ));
            }
            EventKind::ProposalReceived {
                view,
                height,
                leader,
            } => {
                s.push_str(&format!(
                    "\"proposal_received\", \"view\": {view}, \"height\": {height}, \"leader\": {leader}"
                ));
            }
            EventKind::VerifyBatch {
                view,
                items,
                wall_ns,
                charged_ns,
            } => {
                s.push_str(&format!(
                    "\"verify_batch\", \"view\": {view}, \"items\": {items}, \"wall_ns\": {wall_ns}, \"charged_ns\": {charged_ns}"
                ));
            }
            EventKind::SecondChance { view, missing } => {
                s.push_str(&format!(
                    "\"second_chance\", \"view\": {view}, \"missing\": {missing}"
                ));
            }
            EventKind::QcFormed { view, height } => {
                s.push_str(&format!(
                    "\"qc_formed\", \"view\": {view}, \"height\": {height}"
                ));
            }
            EventKind::Committed { view, height } => {
                s.push_str(&format!(
                    "\"committed\", \"view\": {view}, \"height\": {height}"
                ));
            }
            EventKind::FaultInjected { what } => {
                s.push_str("\"fault_injected\", \"what\": ");
                push_json_str(&mut s, what);
            }
            EventKind::WalFsync { wall_ns, bytes } => {
                s.push_str(&format!(
                    "\"wal_fsync\", \"wall_ns\": {wall_ns}, \"bytes\": {bytes}"
                ));
            }
            EventKind::StateChunk { from, blocks } => {
                s.push_str(&format!(
                    "\"state_chunk\", \"from\": {from}, \"blocks\": {blocks}"
                ));
            }
            EventKind::TimeoutSent { view, high_qc_view } => {
                s.push_str(&format!(
                    "\"timeout_sent\", \"view\": {view}, \"high_qc_view\": {high_qc_view}"
                ));
            }
            EventKind::TimeoutQcAdopted { view, qc_view } => {
                s.push_str(&format!(
                    "\"timeout_qc_adopted\", \"view\": {view}, \"qc_view\": {qc_view}"
                ));
            }
            EventKind::IngressBatch { start, len, depth } => {
                s.push_str(&format!(
                    "\"ingress_batch\", \"start\": {start}, \"len\": {len}, \"depth\": {depth}"
                ));
            }
        }
        s.push('}');
        s
    }

    /// Parses a line produced by [`Event::to_json`].
    ///
    /// # Errors
    /// Describes the first malformed or missing field.
    pub fn from_json(line: &str) -> Result<Event, String> {
        use crate::json::{field_u64, parse_flat_object, JsonVal};
        let pairs = parse_flat_object(line)?;
        let at = field_u64(&pairs, "at")?;
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let kind_tag = get("k")
            .and_then(JsonVal::as_str)
            .ok_or("missing event kind \"k\"")?;
        let u = |key: &str| field_u64(&pairs, key);
        let kind = match kind_tag {
            "view_entered" => EventKind::ViewEntered {
                view: u("view")?,
                leader: u("leader")? as u32,
                failed: get("failed")
                    .and_then(JsonVal::as_bool)
                    .ok_or("missing bool \"failed\"")?,
            },
            "timer_fired" => EventKind::TimerFired {
                view: u("view")?,
                kind: get("timer")
                    .and_then(JsonVal::as_str)
                    .and_then(TimerKind::from_tag)
                    .ok_or("bad \"timer\" tag")?,
            },
            "proposal_sent" => EventKind::ProposalSent {
                view: u("view")?,
                height: u("height")?,
                txs: u("txs")? as u32,
            },
            "proposal_received" => EventKind::ProposalReceived {
                view: u("view")?,
                height: u("height")?,
                leader: u("leader")? as u32,
            },
            "verify_batch" => EventKind::VerifyBatch {
                view: u("view")?,
                items: u("items")? as u32,
                wall_ns: u("wall_ns")?,
                charged_ns: u("charged_ns")?,
            },
            "second_chance" => EventKind::SecondChance {
                view: u("view")?,
                missing: u("missing")? as u32,
            },
            "qc_formed" => EventKind::QcFormed {
                view: u("view")?,
                height: u("height")?,
            },
            "committed" => EventKind::Committed {
                view: u("view")?,
                height: u("height")?,
            },
            "fault_injected" => EventKind::FaultInjected {
                what: get("what")
                    .and_then(JsonVal::as_str)
                    .ok_or("missing \"what\"")?
                    .to_string(),
            },
            "wal_fsync" => EventKind::WalFsync {
                wall_ns: u("wall_ns")?,
                bytes: u("bytes")?,
            },
            "state_chunk" => EventKind::StateChunk {
                from: u("from")? as u32,
                blocks: u("blocks")?,
            },
            "timeout_sent" => EventKind::TimeoutSent {
                view: u("view")?,
                high_qc_view: u("high_qc_view")?,
            },
            "timeout_qc_adopted" => EventKind::TimeoutQcAdopted {
                view: u("view")?,
                qc_view: u("qc_view")?,
            },
            "ingress_batch" => EventKind::IngressBatch {
                start: u("start")?,
                len: u("len")? as u32,
                depth: u("depth")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(Event { at, kind })
    }
}

struct TracerInner {
    node: u32,
    cap: usize,
    /// Wall-clock nanoseconds since the unix epoch at this tracer's
    /// time zero — the cross-process alignment anchor in dumps.
    wall_epoch_unix_ns: u64,
    /// Maps `Instant::now()` onto the event axis for threads that have
    /// no actor context clock (WAL, transport). `None` in simulation,
    /// where only explicit virtual timestamps make sense.
    clock: Option<Instant>,
    ring: Mutex<VecDeque<Event>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

/// A cheaply clonable handle to one node's event ring, or the disabled
/// no-op tracer (the default).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

impl Tracer {
    /// The disabled tracer: every emit is a single branch, nothing is
    /// stored, closures passed to [`Tracer::emit_with`] never run.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer for `node` keeping the most recent `cap`
    /// events. Timestamps must be supplied explicitly (simulation /
    /// actor-context time).
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn new(node: u32, cap: usize) -> Tracer {
        Self::build(node, cap, None, unix_now_ns())
    }

    /// An enabled tracer whose [`Tracer::now`] reads wall time relative
    /// to `epoch` — pass the same epoch as `Runtime::with_epoch` so WAL
    /// and transport events share the replica's axis.
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn live(node: u32, cap: usize, epoch: Instant) -> Tracer {
        let wall_epoch = unix_now_ns().saturating_sub(epoch.elapsed().as_nanos() as u64);
        Self::build(node, cap, Some(epoch), wall_epoch)
    }

    fn build(node: u32, cap: usize, clock: Option<Instant>, wall_epoch_unix_ns: u64) -> Tracer {
        assert!(cap > 0, "tracer ring capacity must be positive");
        Tracer {
            inner: Some(Arc::new(TracerInner {
                node,
                cap,
                wall_epoch_unix_ns,
                clock,
                ring: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this tracer's epoch (0 when disabled or when
    /// constructed without a clock).
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.inner {
            Some(inner) => match inner.clock {
                Some(epoch) => epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                None => 0,
            },
            None => 0,
        }
    }

    /// Records `kind` at time `at`. Use for payloads that are free to
    /// build; anything that allocates should go through
    /// [`Tracer::emit_with`].
    #[inline]
    pub fn emit(&self, at: u64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.push(Event { at, kind });
        }
    }

    /// Records the event built by `f` at time `at` — `f` runs only when
    /// tracing is enabled, which is what keeps the disabled hot path
    /// allocation-free.
    #[inline]
    pub fn emit_with<F: FnOnce() -> EventKind>(&self, at: u64, f: F) {
        if let Some(inner) = &self.inner {
            inner.push(Event { at, kind: f() });
        }
    }

    /// The node id this tracer records for (0 when disabled).
    pub fn node(&self) -> u32 {
        self.inner.as_ref().map(|i| i.node).unwrap_or(0)
    }

    /// Total events ever recorded (including since-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.recorded.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.dropped.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Wall-clock unix nanoseconds corresponding to `at == 0`.
    pub fn wall_epoch_unix_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.wall_epoch_unix_ns)
            .unwrap_or(0)
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.ring.lock().unwrap().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// The full dump: one metadata line, then one JSONL line per
    /// retained event. Empty string when disabled.
    pub fn dump_jsonl(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut out = format!(
            "{{\"meta\": 1, \"node\": {}, \"wall_epoch_unix_ns\": {}, \"recorded\": {}, \"dropped\": {}}}\n",
            inner.node,
            inner.wall_epoch_unix_ns,
            self.recorded(),
            self.dropped(),
        );
        for ev in inner.ring.lock().unwrap().iter() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`Tracer::dump_jsonl`] to `path` (no-op when disabled).
    ///
    /// # Errors
    /// Propagates the underlying file I/O error.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if self.enabled() {
            std::fs::write(path, self.dump_jsonl())?;
        }
        Ok(())
    }
}

impl TracerInner {
    fn push(&self, ev: Event) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                at: 5,
                kind: EventKind::ViewEntered {
                    view: 1,
                    leader: 3,
                    failed: false,
                },
            },
            Event {
                at: 6,
                kind: EventKind::TimerFired {
                    view: 1,
                    kind: TimerKind::SecondChance,
                },
            },
            Event {
                at: 7,
                kind: EventKind::ProposalSent {
                    view: 1,
                    height: 9,
                    txs: 100,
                },
            },
            Event {
                at: 8,
                kind: EventKind::ProposalReceived {
                    view: 1,
                    height: 9,
                    leader: 3,
                },
            },
            Event {
                at: 9,
                kind: EventKind::VerifyBatch {
                    view: 1,
                    items: 7,
                    wall_ns: 41_000_000,
                    charged_ns: 0,
                },
            },
            Event {
                at: 10,
                kind: EventKind::SecondChance {
                    view: 1,
                    missing: 2,
                },
            },
            Event {
                at: 11,
                kind: EventKind::QcFormed { view: 1, height: 9 },
            },
            Event {
                at: 12,
                kind: EventKind::Committed { view: 1, height: 7 },
            },
            Event {
                at: 13,
                kind: EventKind::FaultInjected {
                    what: "crash node 2".into(),
                },
            },
            Event {
                at: 14,
                kind: EventKind::WalFsync {
                    wall_ns: 180_000,
                    bytes: 4096,
                },
            },
            Event {
                at: 15,
                kind: EventKind::StateChunk {
                    from: 4,
                    blocks: 32,
                },
            },
            Event {
                at: 16,
                kind: EventKind::TimeoutSent {
                    view: 9,
                    high_qc_view: 7,
                },
            },
            Event {
                at: 17,
                kind: EventKind::TimeoutQcAdopted {
                    view: 9,
                    qc_view: 8,
                },
            },
        ]
    }

    #[test]
    fn every_event_kind_roundtrips_through_json() {
        for ev in sample_events() {
            let line = ev.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn ring_stays_bounded_under_event_flood() {
        let t = Tracer::new(7, 1000);
        for i in 0..50_000u64 {
            t.emit(i, EventKind::QcFormed { view: i, height: i });
        }
        let events = t.events();
        assert_eq!(events.len(), 1000, "ring must hold exactly cap events");
        assert_eq!(t.recorded(), 50_000);
        assert_eq!(t.dropped(), 49_000);
        // The survivors are the most recent, in order.
        assert_eq!(events[0].at, 49_000);
        assert_eq!(events[999].at, 49_999);
        // And the dump stays proportional to cap, not to the flood.
        let dump = t.dump_jsonl();
        assert_eq!(dump.lines().count(), 1001, "meta line + cap events");
        assert!(dump.starts_with("{\"meta\": 1, \"node\": 7,"));
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        let mut built = 0u32;
        for _ in 0..100 {
            t.emit_with(0, || {
                built += 1;
                EventKind::QcFormed { view: 0, height: 0 }
            });
        }
        assert_eq!(built, 0, "disabled tracing must not construct events");
        assert!(!t.enabled());
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.dump_jsonl(), "");
    }

    #[test]
    fn live_clock_advances_on_the_given_epoch() {
        let epoch = Instant::now();
        let t = Tracer::live(1, 16, epoch);
        let a = t.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.now();
        assert!(b > a, "clock must advance");
        assert!(t.wall_epoch_unix_ns() > 0);
        assert_eq!(Tracer::disabled().now(), 0);
    }
}
