//! Lock-free-on-the-hot-path metrics: counters, gauges and fixed-bucket
//! latency histograms behind a name-keyed registry.
//!
//! Registration takes a mutex (cold: once per series per process); every
//! update afterwards is a relaxed atomic on a handle the caller keeps, so
//! instrumented hot paths — message dispatch, signature folding, lane
//! pushes — never contend on the registry itself. Handles are cheap
//! `Arc` clones and stay valid for the life of the registry, including
//! across transport/replica restarts: a series registered under the same
//! name resolves to the same storage, which is what lets per-incarnation
//! components accumulate into one continuous series instead of silently
//! resetting on rebuild.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Clone, Default, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count. Only for mirroring an externally accumulated
    /// total (e.g. a legacy stats block) into the registry at dump time;
    /// instrumented code should use [`Counter::add`].
    #[inline]
    pub fn store(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, peers connected, ...).
#[derive(Clone, Default, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level to at least `v`.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: a 1–2–5 ladder from 1µs to 300s, chosen so every latency this
/// system produces — sub-µs queue pushes to multi-second view timeouts —
/// lands within ~25% of a boundary. The last bucket is an overflow catch
/// for anything slower.
pub const BUCKET_BOUNDS_NS: [u64; 26] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
    60_000_000_000,
    120_000_000_000,
    300_000_000_000,
];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1; // + overflow

/// A fixed-bucket latency histogram with exact count/sum/max and
/// bucket-resolution quantiles.
///
/// `record` is two relaxed atomics plus a branchless-ish bucket search on
/// a 26-entry const array — cheap enough for per-message paths. Quantiles
/// report the upper bound of the bucket holding the requested rank, so a
/// value recorded exactly at a bucket boundary is reported exactly
/// (`tests::quantiles_exact_at_bucket_boundaries`), and any value is
/// reported within one bucket (≤ ~2.5×) of its true position.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS.partition_point(|&b| b < ns);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(ns, Ordering::Relaxed);
        self.0.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a `std::time::Duration` sample.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (ns).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (ns, exact).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample (ns, exact), 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) at bucket resolution: the upper
    /// bound of the bucket containing the sample of rank `ceil(q·count)`,
    /// clamped to the recorded max (so no quantile ever exceeds a value
    /// actually seen). Returns 0 when empty; overflow-bucket ranks
    /// report the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[i].min(self.max())
                } else {
                    // Overflow bucket has no upper bound; the recorded
                    // max is the tightest true statement we can make.
                    self.max()
                };
            }
        }
        self.max()
    }

    /// A consistent-enough snapshot of the distribution summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Summary statistics of a [`Histogram`] at a point in time (all ns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum.
    pub sum: u64,
    /// Exact max.
    pub max: u64,
    /// Exact mean.
    pub mean: u64,
    /// Median at bucket resolution.
    pub p50: u64,
    /// 99th percentile at bucket resolution.
    pub p99: u64,
    /// 99.9th percentile at bucket resolution.
    pub p999: u64,
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A name-keyed collection of metric series shared by every subsystem of
/// one node.
///
/// Names follow `<subsystem>.<series>` (`transport.lane_evicted`,
/// `runtime.timer_lag_ns`, `wal.fsync_ns`, ...); histogram names carry
/// their unit as a suffix. Cloning is cheap (`Arc`) and all clones see
/// the same series, so a registry created once per node can be handed to
/// each transport/replica incarnation in turn.
#[derive(Clone, Default)]
pub struct Registry {
    series: Arc<Mutex<BTreeMap<String, Series>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. Panics if `name` is already a gauge or histogram — series
    /// names are a per-node namespace and a type clash is a bug.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.series.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Series::Counter(Counter::default()))
        {
            Series::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// The gauge registered under `name` (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.series.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Series::Gauge(Gauge::default()))
        {
            Series::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// The histogram registered under `name` (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.series.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Series::Histogram(Histogram::default()))
        {
            Series::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// All series flattened to `(name, value)` pairs, histogram summaries
    /// expanded with `.count/.mean/.p50/.p99/.p999/.max` suffixes. Sorted
    /// by name (the map is a `BTreeMap`) so dumps diff cleanly.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let map = self.series.lock().unwrap();
        let mut out = Vec::with_capacity(map.len());
        for (name, series) in map.iter() {
            match series {
                Series::Counter(c) => out.push((name.clone(), c.get())),
                Series::Gauge(g) => out.push((name.clone(), g.get())),
                Series::Histogram(h) => {
                    let s = h.snapshot();
                    out.push((format!("{name}.count"), s.count));
                    out.push((format!("{name}.mean"), s.mean));
                    out.push((format!("{name}.p50"), s.p50));
                    out.push((format!("{name}.p99"), s.p99));
                    out.push((format!("{name}.p999"), s.p999));
                    out.push((format!("{name}.max"), s.max));
                }
            }
        }
        out
    }

    /// The flattened series as one flat JSON object (the repo's bench
    /// files use the same flat-number convention).
    pub fn to_json(&self) -> String {
        let flat = self.flatten();
        let mut s = String::from("{\n");
        for (i, (name, v)) in flat.iter().enumerate() {
            s.push_str(&format!(
                "  \"{name}\": {v}{}\n",
                if i + 1 < flat.len() { "," } else { "" }
            ));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.count").get(), 5, "same name, same storage");
        let g = r.gauge("a.depth");
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7, "raise never lowers");
        g.raise(11);
        assert_eq!(r.gauge("a.depth").get(), 11);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_clash_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn quantiles_exact_at_bucket_boundaries() {
        // Every recorded value sits exactly on a bucket upper bound, so
        // every quantile must come back exactly.
        let h = Histogram::default();
        for &b in &BUCKET_BOUNDS_NS {
            h.record(b);
        }
        let n = BUCKET_BOUNDS_NS.len() as f64;
        for (i, &b) in BUCKET_BOUNDS_NS.iter().enumerate() {
            // rank i+1 => q in ((i)/n, (i+1)/n]; probe the midpoint.
            let q = (i as f64 + 0.5) / n;
            assert_eq!(h.quantile(q), b, "quantile {q} should be exactly {b}");
        }
        assert_eq!(h.quantile(0.0), BUCKET_BOUNDS_NS[0], "q=0 is the min bound");
        assert_eq!(h.quantile(1.0), *BUCKET_BOUNDS_NS.last().unwrap());
    }

    #[test]
    fn exact_stats_and_overflow() {
        let h = Histogram::default();
        h.record(10);
        h.record(400_000_000_000); // beyond the last bound -> overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400_000_000_010);
        assert_eq!(h.max(), 400_000_000_000);
        assert_eq!(
            h.quantile(1.0),
            400_000_000_000,
            "overflow ranks report the exact max"
        );
        assert_eq!(h.quantile(0.25), BUCKET_BOUNDS_NS[0]);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantile_monotone_and_bounded(
            samples in collection::vec(0u64..500_000_000_000, 1..200),
            qa in 0.0f64..=1.0,
            qb in 0.0f64..=1.0,
        ) {
            let h = Histogram::default();
            for &s in &samples {
                h.record(s);
            }
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(
                h.quantile(lo) <= h.quantile(hi),
                "quantile must be monotone: q{lo} -> {} > q{hi} -> {}",
                h.quantile(lo), h.quantile(hi)
            );
            // Every quantile is bounded by the true extremes' buckets.
            prop_assert!(h.quantile(1.0) >= *samples.iter().max().unwrap());
            prop_assert_eq!(h.count(), samples.len() as u64);
        }
    }

    #[test]
    fn flatten_expands_histograms_sorted() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.histogram("a.lat_ns").record(1_000);
        let flat = r.flatten();
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "a.lat_ns.count",
                "a.lat_ns.mean",
                "a.lat_ns.p50",
                "a.lat_ns.p99",
                "a.lat_ns.p999",
                "a.lat_ns.max",
                "z.last",
            ]
        );
        let json = r.to_json();
        assert!(json.contains("\"a.lat_ns.p99\": 1000"), "{json}");
        assert!(json.contains("\"z.last\": 1"), "{json}");
    }
}
