#![cfg(feature = "blst-oracle")]

//! Cross-validation of the from-scratch BLS12-381 implementation against the
//! `blst` production library (dev-dependency oracle only — the library
//! itself never links blst).
//!
//! Strategy: deserialize blst's canonical generators into our
//! representation, then check that scalar multiplication, point addition and
//! the pairing agree between the two implementations via the zcash
//! uncompressed wire format.

use blst::*;
use iniva_crypto::curve::Point;
use iniva_crypto::fields::{Field, Fp12};
use iniva_crypto::{g1, g2, pairing};

fn blst_g1_gen_bytes() -> [u8; 96] {
    // SAFETY: blst_p1_generator returns a valid static point and
    // blst_p1_serialize writes exactly 96 bytes into the stack buffer.
    unsafe {
        let gen = blst_p1_generator();
        let mut out = [0u8; 96];
        blst_p1_serialize(out.as_mut_ptr(), gen);
        out
    }
}

fn blst_g2_gen_bytes() -> [u8; 192] {
    // SAFETY: blst_p2_generator returns a valid static point and
    // blst_p2_serialize writes exactly 192 bytes into the stack buffer.
    unsafe {
        let gen = blst_p2_generator();
        let mut out = [0u8; 192];
        blst_p2_serialize(out.as_mut_ptr(), gen);
        out
    }
}

fn blst_scalar_from_u64(v: u64) -> blst_scalar {
    let mut s = blst_scalar::default();
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&v.to_le_bytes());
    // SAFETY: blst_scalar_from_lendian reads exactly 32 bytes from `bytes`
    // and writes into the locally owned `s`.
    unsafe { blst_scalar_from_lendian(&mut s, bytes.as_ptr()) };
    s
}

fn blst_g1_mul(point_bytes: &[u8; 96], k: u64) -> [u8; 96] {
    // SAFETY: every pointer handed to blst is a local stack value of the
    // exact size the call expects (96-byte serialized form, 32-byte scalar
    // of which 64 bits are consumed); deserialize success is asserted
    // before the point is used.
    unsafe {
        let mut aff = blst_p1_affine::default();
        assert_eq!(
            blst_p1_deserialize(&mut aff, point_bytes.as_ptr()),
            BLST_ERROR::BLST_SUCCESS
        );
        let mut p = blst_p1::default();
        blst_p1_from_affine(&mut p, &aff);
        let s = blst_scalar_from_u64(k);
        let mut out = blst_p1::default();
        blst_p1_mult(&mut out, &p, s.b.as_ptr(), 64);
        let mut bytes = [0u8; 96];
        blst_p1_serialize(bytes.as_mut_ptr(), &out);
        bytes
    }
}

fn blst_g2_mul(point_bytes: &[u8; 192], k: u64) -> [u8; 192] {
    // SAFETY: as in blst_g1_mul — local stack buffers of the exact sizes
    // the G2 calls expect (192-byte serialized form, 32-byte scalar), with
    // deserialize success asserted before use.
    unsafe {
        let mut aff = blst_p2_affine::default();
        assert_eq!(
            blst_p2_deserialize(&mut aff, point_bytes.as_ptr()),
            BLST_ERROR::BLST_SUCCESS
        );
        let mut p = blst_p2::default();
        blst_p2_from_affine(&mut p, &aff);
        let s = blst_scalar_from_u64(k);
        let mut out = blst_p2::default();
        blst_p2_mult(&mut out, &p, s.b.as_ptr(), 64);
        let mut bytes = [0u8; 192];
        blst_p2_serialize(bytes.as_mut_ptr(), &out);
        bytes
    }
}

#[test]
fn blst_g1_generator_is_valid_in_our_subgroup() {
    let bytes = blst_g1_gen_bytes();
    let p = g1::deserialize(&bytes).expect("blst generator must deserialize and pass checks");
    assert!(g1::in_subgroup(&p));
}

#[test]
fn blst_g2_generator_is_valid_in_our_subgroup() {
    let bytes = blst_g2_gen_bytes();
    let p = g2::deserialize(&bytes).expect("blst generator must deserialize and pass checks");
    assert!(g2::in_subgroup(&p));
}

#[test]
fn g1_scalar_mul_agrees_with_blst() {
    let gen_bytes = blst_g1_gen_bytes();
    let ours = g1::deserialize(&gen_bytes).unwrap();
    for k in [1u64, 2, 3, 7, 0xdead_beef, u64::MAX] {
        let ours_mul = g1::serialize(&ours.mul_u64(k));
        let theirs = blst_g1_mul(&gen_bytes, k);
        assert_eq!(ours_mul, theirs, "k = {k}");
    }
}

#[test]
fn g2_scalar_mul_agrees_with_blst() {
    let gen_bytes = blst_g2_gen_bytes();
    let ours = g2::deserialize(&gen_bytes).unwrap();
    for k in [1u64, 2, 5, 0x1234_5678_9abc_def0] {
        let ours_mul = g2::serialize(&ours.mul_u64(k));
        let theirs = blst_g2_mul(&gen_bytes, k);
        assert_eq!(ours_mul, theirs, "k = {k}");
    }
}

#[test]
fn g1_addition_agrees_with_blst() {
    // (a + b)·G computed as point addition of a·G and b·G must serialize to
    // blst's (a+b)·G.
    let gen_bytes = blst_g1_gen_bytes();
    let g = g1::deserialize(&gen_bytes).unwrap();
    let sum = g.mul_u64(41).add(&g.mul_u64(59));
    assert_eq!(g1::serialize(&sum), blst_g1_mul(&gen_bytes, 100));
}

/// Extracts the 12 Fp coefficients of a blst fp12 in big-endian bytes,
/// ordered (c0.c0.c0, c0.c0.c1, c0.c1.c0, ... c1.c2.c1).
fn blst_fp12_coeffs(f: &blst_fp12) -> Vec<[u8; 48]> {
    let mut out = Vec::with_capacity(12);
    for fp6 in &f.fp6 {
        for fp2 in &fp6.fp2 {
            for fp in &fp2.fp {
                let mut be = [0u8; 48];
                // SAFETY: blst_bendian_from_fp writes exactly 48 bytes
                // into the stack buffer; `fp` is a valid field element
                // borrowed from the caller's fp12.
                unsafe { blst_bendian_from_fp(be.as_mut_ptr(), fp) };
                out.push(be);
            }
        }
    }
    out
}

fn our_fp12_coeffs(f: &Fp12) -> Vec<[u8; 48]> {
    let mut out = Vec::with_capacity(12);
    for fp6 in [&f.c0, &f.c1] {
        for fp2 in [&fp6.c0, &fp6.c1, &fp6.c2] {
            for fp in [&fp2.c0, &fp2.c1] {
                out.push(fp.to_be_bytes());
            }
        }
    }
    out
}

#[test]
fn pairing_value_agrees_with_blst() {
    let g1_bytes = blst_g1_gen_bytes();
    let g2_bytes = blst_g2_gen_bytes();
    let p = g1::deserialize(&g1_bytes).unwrap().mul_u64(5);
    let q = g2::deserialize(&g2_bytes).unwrap().mul_u64(7);
    let ours = pairing::pairing(&p, &q);

    // SAFETY: all pointers are to local stack values of the serialized
    // sizes blst expects; deserialize success is asserted before the
    // affine points feed the Miller loop.
    let theirs = unsafe {
        let mut p_aff = blst_p1_affine::default();
        let p_ser = g1::serialize(&p);
        assert_eq!(
            blst_p1_deserialize(&mut p_aff, p_ser.as_ptr()),
            BLST_ERROR::BLST_SUCCESS
        );
        let mut q_aff = blst_p2_affine::default();
        let q_ser = g2::serialize(&q);
        assert_eq!(
            blst_p2_deserialize(&mut q_aff, q_ser.as_ptr()),
            BLST_ERROR::BLST_SUCCESS
        );
        let mut ml = blst_fp12::default();
        blst_miller_loop(&mut ml, &q_aff, &p_aff);
        let mut fe = blst_fp12::default();
        blst_final_exp(&mut fe, &ml);
        fe
    };

    assert_eq!(
        our_fp12_coeffs(&ours),
        blst_fp12_coeffs(&theirs),
        "pairing output must be bit-identical to blst"
    );
}

#[test]
fn our_derived_generators_satisfy_same_relations_as_blst_points() {
    // Group-law consistency between a blst-imported point and our derived
    // generator: discrete logs differ, but mixed arithmetic must close.
    let imported = g1::deserialize(&blst_g1_gen_bytes()).unwrap();
    let ours = g1::generator();
    let lhs = imported.add(&ours).mul_u64(3);
    let rhs = imported
        .mul_u64(3)
        .add(&ours.mul_u64(2))
        .add(&Point::from_affine(&ours.to_affine()));
    assert!(lhs.eq_point(&rhs));
}
