//! Property coverage for `VoteScheme::verify_batch`: the batch path must
//! agree with per-item `verify` on arbitrary mixed batches (all-good,
//! some-bad, all-bad), the BLS bisection fallback must name *exactly* the
//! bad aggregates, and the per-message hash-to-curve cache must never
//! serve a stale message across views.

use iniva_crypto::bls::{BlsAggregate, BlsScheme};
use iniva_crypto::multisig::{BatchOutcome, Multiplicities, VoteScheme};
use iniva_crypto::sim_scheme::{SimAggregate, SimScheme};
use proptest::prelude::*;

/// How an item of a randomized batch is corrupted (0 = honest).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Corruption {
    Honest,
    /// Signed bytes differ from the group message.
    WrongMessage,
    /// Multiplicity table tampered after signing.
    TamperedMults,
}

fn corruption(kind: u8) -> Corruption {
    match kind % 4 {
        0 | 1 => Corruption::Honest, // bias toward mixed batches
        2 => Corruption::WrongMessage,
        _ => Corruption::TamperedMults,
    }
}

/// Builds one aggregate for `scheme` under the given corruption. The
/// honest shape mirrors protocol aggregates: one or two signers with
/// small multiplicities.
fn build_item<S: VoteScheme>(
    scheme: &S,
    n: u32,
    msg: &[u8],
    signer: u32,
    second: Option<u32>,
    kind: Corruption,
) -> (S::Aggregate, bool)
where
    S::Aggregate: Clone,
{
    let signer = signer % n;
    let base_msg: Vec<u8> = match kind {
        Corruption::WrongMessage => [msg, b"-forged"].concat(),
        _ => msg.to_vec(),
    };
    let mut agg = scheme.sign(signer, &base_msg);
    if let Some(s2) = second {
        let s2 = s2 % n;
        if s2 != signer {
            agg = scheme.combine(&agg, &scheme.scale(&scheme.sign(s2, &base_msg), 2));
        }
    }
    (agg, kind == Corruption::Honest)
}

/// Tampers the multiplicity table of a built aggregate (SimScheme).
fn tamper_sim(agg: &mut SimAggregate) {
    let bumped: Multiplicities = agg
        .mults
        .iter()
        .map(|(s, c)| (s, c + 1))
        .collect::<Multiplicities>();
    agg.mults = bumped;
}

fn tamper_bls(agg: &mut BlsAggregate) {
    let bumped: Multiplicities = agg
        .mults
        .iter()
        .map(|(s, c)| (s, c + 1))
        .collect::<Multiplicities>();
    agg.mults = bumped;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SimScheme (exercises the default per-item implementation): batch
    /// outcome == per-item verification on random mixed batches spanning
    /// several messages.
    #[test]
    fn sim_batch_agrees_with_per_item(
        spec in collection::vec(
            collection::vec((any::<u32>(), any::<u32>(), any::<bool>(), any::<u8>()), 0..5),
            1..4,
        )
    ) {
        let n = 6u32;
        let scheme = SimScheme::new(n as usize, b"batch-prop");
        let msgs: Vec<Vec<u8>> = (0..spec.len())
            .map(|g| format!("group-msg-{g}").into_bytes())
            .collect();
        let mut groups_data: Vec<Vec<SimAggregate>> = Vec::new();
        for (g, items) in spec.iter().enumerate() {
            let mut aggs = Vec::new();
            for &(signer, second, pair, kind) in items {
                let kind = corruption(kind);
                let (mut agg, _) = build_item(
                    &scheme,
                    n,
                    &msgs[g],
                    signer,
                    pair.then_some(second),
                    kind,
                );
                if kind == Corruption::TamperedMults {
                    tamper_sim(&mut agg);
                }
                aggs.push(agg);
            }
            groups_data.push(aggs);
        }
        let groups: Vec<(&[u8], &[SimAggregate])> = msgs
            .iter()
            .zip(&groups_data)
            .map(|(m, aggs)| (m.as_slice(), aggs.as_slice()))
            .collect();
        let outcome = scheme.verify_batch(&groups);
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (g, (msg, aggs)) in groups.iter().enumerate() {
            for (i, agg) in aggs.iter().enumerate() {
                if !scheme.verify(msg, agg) {
                    expected.push((g, i));
                }
            }
        }
        let want = if expected.is_empty() {
            BatchOutcome::AllValid
        } else {
            BatchOutcome::Invalid(expected)
        };
        prop_assert_eq!(outcome, want);
    }

    /// Hostile multiplicity tables combined through the public API never
    /// panic or wrap — saturating arithmetic end to end.
    #[test]
    fn hostile_multiplicities_never_panic(
        a in collection::vec((0u32..8, any::<u64>()), 0..6),
        b in collection::vec((0u32..8, any::<u64>()), 0..6),
        k in any::<u64>(),
    ) {
        let ma: Multiplicities = a.into_iter().collect();
        let mb: Multiplicities = b.into_iter().collect();
        let merged = ma.merge(&mb);
        let scaled = merged.scale(k);
        // Saturation invariants: every derived count is at least the
        // inputs' floor and never wraps below them.
        for (s, c) in ma.iter() {
            prop_assert!(merged.get(s) >= c);
        }
        let _ = scaled.total();
        let _ = merged.total();
    }
}

proptest! {
    // Real pairings are ~ms each even with the batch path; keep the BLS
    // property at a handful of cases (the SimScheme property above covers
    // the combinatorics at volume).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// BLS (the RLC multi-pairing override): outcome == per-item verify,
    /// and the bisection fallback names exactly the bad aggregates.
    #[test]
    fn bls_batch_agrees_with_per_item_and_names_culprits(
        spec in collection::vec((any::<u32>(), any::<u8>()), 1..6),
        two_groups in any::<bool>(),
    ) {
        let n = 4u32;
        let scheme = BlsScheme::new(n as usize, b"bls-batch-prop");
        let m1: &[u8] = b"bls-group-1";
        let m2: &[u8] = b"bls-group-2";
        let mut g1: Vec<BlsAggregate> = Vec::new();
        let mut g2: Vec<BlsAggregate> = Vec::new();
        for (i, &(signer, kind)) in spec.iter().enumerate() {
            let kind = corruption(kind);
            let target_msg = if two_groups && i % 2 == 1 { m2 } else { m1 };
            let (mut agg, _) = build_item(&scheme, n, target_msg, signer, None, kind);
            if kind == Corruption::TamperedMults {
                tamper_bls(&mut agg);
            }
            if two_groups && i % 2 == 1 {
                g2.push(agg);
            } else {
                g1.push(agg);
            }
        }
        let mut groups: Vec<(&[u8], &[BlsAggregate])> = vec![(m1, g1.as_slice())];
        if !g2.is_empty() {
            groups.push((m2, g2.as_slice()));
        }
        let outcome = scheme.verify_batch(&groups);
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (g, (msg, aggs)) in groups.iter().enumerate() {
            for (i, agg) in aggs.iter().enumerate() {
                if !scheme.verify(msg, agg) {
                    expected.push((g, i));
                }
            }
        }
        let want = if expected.is_empty() {
            BatchOutcome::AllValid
        } else {
            BatchOutcome::Invalid(expected)
        };
        prop_assert_eq!(outcome, want);
    }

    /// The per-message hash-to-curve cache is keyed by full message bytes:
    /// across a random sequence of views, signatures only ever verify
    /// against their own view's message, cold or cached.
    #[test]
    fn bls_h2c_cache_never_stale_across_views(views in collection::vec(1u64..50, 2..5)) {
        let scheme = BlsScheme::new(3, b"bls-cache-prop");
        let msg_of = |v: u64| [b"vote".as_slice(), &v.to_be_bytes()].concat();
        let sigs: Vec<(u64, BlsAggregate)> = views
            .iter()
            .map(|&v| (v, scheme.sign(0, &msg_of(v))))
            .collect();
        for (v, sig) in &sigs {
            // Cold then cached.
            prop_assert!(scheme.verify(&msg_of(*v), sig));
            prop_assert!(scheme.verify(&msg_of(*v), sig));
        }
        for (v, sig) in &sigs {
            for (w, _) in &sigs {
                if v != w {
                    prop_assert!(
                        !scheme.verify(&msg_of(*w), sig),
                        "view {v} signature verified under cached view-{w} message"
                    );
                }
            }
        }
    }
}

/// Deterministic pin of the "no per-item re-verification" acceptance
/// criterion: isolating one culprit in an 8-item batch costs O(log n)
/// multi-pairing probes, strictly fewer than the 8 pairing equations the
/// per-item fallback would evaluate.
#[test]
fn bisection_probe_budget_is_logarithmic() {
    let scheme = BlsScheme::new(8, b"bls-probe-budget");
    let msg: &[u8] = b"probe-budget";
    let mut aggs: Vec<BlsAggregate> = (0..8).map(|i| scheme.sign(i, msg)).collect();
    aggs[3].mults = Multiplicities::singleton(4);
    let before = scheme.batch_probe_count();
    let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(msg, aggs.as_slice())];
    assert_eq!(
        scheme.verify_batch(&groups),
        BatchOutcome::Invalid(vec![(0, 3)])
    );
    let probes = scheme.batch_probe_count() - before;
    // 1 initial + at most 2 per bisection level (log2(8) = 3 levels).
    assert!(
        probes <= 1 + 2 * 3,
        "expected O(log n) probes, got {probes}"
    );
}
