//! The G2 group: order-`r` subgroup of the sextic twist
//! `E'(Fp2): y^2 = x^3 + 4(1 + u)`.

use crate::curve::{Affine, Point};
use crate::fields::{Field, Fp, Fp2};
use crate::nat::Nat;
use crate::params::curve_params;
use crate::sha256::sha256_many;
use std::sync::OnceLock;

/// A G2 group element.
pub type G2 = Point<Fp2>;

/// The twist coefficient `b' = 4(1 + u)`.
pub fn b() -> Fp2 {
    Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
}

/// A fixed generator of the order-`r` subgroup of the twist, derived
/// deterministically (see [`crate::g1::generator`] for the rationale).
pub fn generator() -> G2 {
    static GEN: OnceLock<G2> = OnceLock::new();
    *GEN.get_or_init(|| {
        let p = hash_to_curve(b"INIVA-V1-G2-GENERATOR");
        assert!(!p.is_infinity());
        assert!(p.mul_nat(&curve_params().r).is_infinity());
        p
    })
}

/// Maps bytes to the order-`r` subgroup of `E'(Fp2)` by try-and-increment
/// plus cofactor clearing (`h2` is large, so this is comparatively slow and
/// intended for generator/testing use; signatures hash to G1).
pub fn hash_to_curve(msg: &[u8]) -> G2 {
    for ctr in 0u32..=u32::MAX {
        let coord = |tag: &[u8]| -> Fp {
            let h1 = sha256_many(&[b"iniva-g2-h2c", &ctr.to_be_bytes(), tag, b"/0", msg]);
            let h2 = sha256_many(&[b"iniva-g2-h2c", &ctr.to_be_bytes(), tag, b"/1", msg]);
            let mut wide = [0u8; 64];
            wide[..32].copy_from_slice(&h1);
            wide[32..].copy_from_slice(&h2);
            Fp::from_nat(&Nat::from_be_bytes(&wide))
        };
        let x = Fp2::new(coord(b"c0"), coord(b"c1"));
        let rhs = x.square().mul(&x).add(&b());
        if let Some(y) = rhs.sqrt() {
            let p = Point::from_affine(&Affine::Coords { x, y });
            let cleared = p.mul_nat(&curve_params().h2);
            if !cleared.is_infinity() {
                return cleared;
            }
        }
    }
    unreachable!("hash_to_curve exhausted the counter space")
}

/// True if the point lies on the twist and in the order-`r` subgroup.
pub fn in_subgroup(p: &G2) -> bool {
    p.is_on_curve(&b()) && p.mul_nat(&curve_params().r).is_infinity()
}

/// Serializes to the 192-byte uncompressed zcash/blst format:
/// big-endian `x.c1 || x.c0 || y.c1 || y.c0`.
pub fn serialize(p: &G2) -> [u8; 192] {
    let mut out = [0u8; 192];
    match p.to_affine() {
        Affine::Infinity => {
            out[0] = 0x40;
        }
        Affine::Coords { x, y } => {
            out[..48].copy_from_slice(&x.c1.to_be_bytes());
            out[48..96].copy_from_slice(&x.c0.to_be_bytes());
            out[96..144].copy_from_slice(&y.c1.to_be_bytes());
            out[144..].copy_from_slice(&y.c0.to_be_bytes());
        }
    }
    out
}

/// Deserializes the 192-byte uncompressed format with full validation.
pub fn deserialize(bytes: &[u8; 192]) -> Option<G2> {
    if bytes[0] & 0x80 != 0 {
        return None;
    }
    if bytes[0] & 0x40 != 0 {
        let rest_zero = bytes[1..].iter().all(|&b| b == 0) && bytes[0] == 0x40;
        return rest_zero.then(Point::infinity);
    }
    let p_mod = &curve_params().p;
    let fp_at = |range: std::ops::Range<usize>| -> Option<Fp> {
        let n = Nat::from_be_bytes(&bytes[range]);
        (&n < p_mod).then(|| Fp::from_nat(&n))
    };
    let x = Fp2::new(fp_at(48..96)?, fp_at(0..48)?);
    let y = Fp2::new(fp_at(144..192)?, fp_at(96..144)?);
    let pt = Point::from_affine(&Affine::Coords { x, y });
    in_subgroup(&pt).then_some(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_in_subgroup() {
        assert!(in_subgroup(&generator()));
    }

    #[test]
    fn group_law_on_twist() {
        let g = generator();
        assert!(g.double().eq_point(&g.add(&g)));
        assert!(g.mul_u64(5).eq_point(&g.double().double().add(&g)));
    }

    #[test]
    fn serialization_roundtrip() {
        let p = generator().mul_u64(987);
        let q = deserialize(&serialize(&p)).expect("valid encoding");
        assert!(p.eq_point(&q));
    }

    #[test]
    fn deserialize_rejects_non_subgroup_point() {
        // A random twist point before cofactor clearing is (overwhelmingly)
        // outside the r-subgroup: construct one by perturbing x until we hit
        // the curve, then check the deserializer's subgroup check fires.
        let mut x = Fp2::new(Fp::from_u64(1), Fp::from_u64(2));
        loop {
            let rhs = x.square().mul(&x).add(&b());
            if let Some(y) = rhs.sqrt() {
                let pt = Point::from_affine(&Affine::Coords { x, y });
                if !pt.mul_nat(&curve_params().r).is_infinity() {
                    let bytes = serialize(&pt);
                    assert!(deserialize(&bytes).is_none());
                    return;
                }
            }
            x = x.add(&Fp2::one());
        }
    }
}
