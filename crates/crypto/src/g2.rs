//! The G2 group: order-`r` subgroup of the sextic twist
//! `E'(Fp2): y^2 = x^3 + 4(1 + u)`.

use crate::curve::{Affine, Point};
use crate::fields::{Field, Fp, Fp2};
use crate::nat::Nat;
use crate::params::curve_params;
use crate::sha256::sha256_many;
use std::sync::OnceLock;

/// A G2 group element.
pub type G2 = Point<Fp2>;

/// The twist coefficient `b' = 4(1 + u)`.
pub fn b() -> Fp2 {
    Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
}

/// A fixed generator of the order-`r` subgroup of the twist, derived
/// deterministically (see [`crate::g1::generator`] for the rationale).
pub fn generator() -> G2 {
    static GEN: OnceLock<G2> = OnceLock::new();
    *GEN.get_or_init(|| {
        let p = hash_to_curve(b"INIVA-V1-G2-GENERATOR");
        assert!(!p.is_infinity());
        assert!(p.mul_nat(&curve_params().r).is_infinity());
        p
    })
}

/// Maps bytes to the order-`r` subgroup of `E'(Fp2)` by try-and-increment
/// plus cofactor clearing (`h2` is large, so this is comparatively slow and
/// intended for generator/testing use; signatures hash to G1).
pub fn hash_to_curve(msg: &[u8]) -> G2 {
    for ctr in 0u32..=u32::MAX {
        let coord = |tag: &[u8]| -> Fp {
            let h1 = sha256_many(&[b"iniva-g2-h2c", &ctr.to_be_bytes(), tag, b"/0", msg]);
            let h2 = sha256_many(&[b"iniva-g2-h2c", &ctr.to_be_bytes(), tag, b"/1", msg]);
            let mut wide = [0u8; 64];
            wide[..32].copy_from_slice(&h1);
            wide[32..].copy_from_slice(&h2);
            Fp::from_nat(&Nat::from_be_bytes(&wide))
        };
        let x = Fp2::new(coord(b"c0"), coord(b"c1"));
        let rhs = x.square().mul(&x).add(&b());
        if let Some(y) = rhs.sqrt() {
            let p = Point::from_affine(&Affine::Coords { x, y });
            let cleared = p.mul_nat(&curve_params().h2);
            if !cleared.is_infinity() {
                return cleared;
            }
        }
    }
    unreachable!("hash_to_curve exhausted the counter space")
}

/// True if the point lies on the twist and in the order-`r` subgroup.
pub fn in_subgroup(p: &G2) -> bool {
    p.is_on_curve(&b()) && p.mul_nat(&curve_params().r).is_infinity()
}

/// Serializes to the 192-byte uncompressed zcash/blst format:
/// big-endian `x.c1 || x.c0 || y.c1 || y.c0`.
pub fn serialize(p: &G2) -> [u8; 192] {
    let mut out = [0u8; 192];
    match p.to_affine() {
        Affine::Infinity => {
            out[0] = 0x40;
        }
        Affine::Coords { x, y } => {
            out[..48].copy_from_slice(&x.c1.to_be_bytes());
            out[48..96].copy_from_slice(&x.c0.to_be_bytes());
            out[96..144].copy_from_slice(&y.c1.to_be_bytes());
            out[144..].copy_from_slice(&y.c0.to_be_bytes());
        }
    }
    out
}

/// True when `y` is the lexicographically largest of `{y, -y}`, ordering
/// `Fp2` elements by `c1` first, then `c0` (the zcash/blst convention).
fn y_is_largest(y: &Fp2) -> bool {
    let neg = y.neg();
    let (a, b) = (y.c1.to_nat(), neg.c1.to_nat());
    if a != b {
        return a > b;
    }
    y.c0.to_nat() > neg.c0.to_nat()
}

/// Serializes to the 96-byte compressed zcash/blst format: big-endian
/// `x.c1 || x.c0` with flag bits in byte 0 — `0x80` (compressed), `0x40`
/// (infinity), `0x20` (`y` lexicographically largest). This is the wire
/// form of a BLS public key.
pub fn serialize_compressed(p: &G2) -> [u8; 96] {
    let mut out = [0u8; 96];
    match p.to_affine() {
        Affine::Infinity => {
            out[0] = 0xc0;
        }
        Affine::Coords { x, y } => {
            out[..48].copy_from_slice(&x.c1.to_be_bytes());
            out[48..].copy_from_slice(&x.c0.to_be_bytes());
            out[0] |= 0x80;
            if y_is_largest(&y) {
                out[0] |= 0x20;
            }
        }
    }
    out
}

/// Deserializes the 96-byte compressed format with full validation:
/// canonical flags, both coordinates below the modulus, `x` on the twist,
/// and the decompressed point inside the order-`r` subgroup.
pub fn deserialize_compressed(bytes: &[u8; 96]) -> Option<G2> {
    if bytes[0] & 0x80 == 0 {
        return None;
    }
    if bytes[0] & 0x40 != 0 {
        let rest_zero = bytes[0] == 0xc0 && bytes[1..].iter().all(|&b| b == 0);
        return rest_zero.then(Point::infinity);
    }
    let sign = bytes[0] & 0x20 != 0;
    let mut c1_bytes = [0u8; 48];
    c1_bytes.copy_from_slice(&bytes[..48]);
    c1_bytes[0] &= 0x1f;
    let p_mod = &curve_params().p;
    let c1_nat = Nat::from_be_bytes(&c1_bytes);
    let c0_nat = Nat::from_be_bytes(&bytes[48..]);
    if &c1_nat >= p_mod || &c0_nat >= p_mod {
        return None;
    }
    let x = Fp2::new(Fp::from_nat(&c0_nat), Fp::from_nat(&c1_nat));
    let rhs = x.square().mul(&x).add(&b());
    let mut y = rhs.sqrt()?;
    if y_is_largest(&y) != sign {
        y = y.neg();
    }
    let pt = Point::from_affine(&Affine::Coords { x, y });
    in_subgroup(&pt).then_some(pt)
}

/// Deserializes the 192-byte uncompressed format with full validation.
pub fn deserialize(bytes: &[u8; 192]) -> Option<G2> {
    if bytes[0] & 0x80 != 0 {
        return None;
    }
    if bytes[0] & 0x40 != 0 {
        let rest_zero = bytes[1..].iter().all(|&b| b == 0) && bytes[0] == 0x40;
        return rest_zero.then(Point::infinity);
    }
    let p_mod = &curve_params().p;
    let fp_at = |range: std::ops::Range<usize>| -> Option<Fp> {
        let n = Nat::from_be_bytes(&bytes[range]);
        (&n < p_mod).then(|| Fp::from_nat(&n))
    };
    let x = Fp2::new(fp_at(48..96)?, fp_at(0..48)?);
    let y = Fp2::new(fp_at(144..192)?, fp_at(96..144)?);
    let pt = Point::from_affine(&Affine::Coords { x, y });
    in_subgroup(&pt).then_some(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_in_subgroup() {
        assert!(in_subgroup(&generator()));
    }

    #[test]
    fn group_law_on_twist() {
        let g = generator();
        assert!(g.double().eq_point(&g.add(&g)));
        assert!(g.mul_u64(5).eq_point(&g.double().double().add(&g)));
    }

    #[test]
    fn serialization_roundtrip() {
        let p = generator().mul_u64(987);
        let q = deserialize(&serialize(&p)).expect("valid encoding");
        assert!(p.eq_point(&q));
    }

    #[test]
    fn compressed_roundtrip_both_signs() {
        let mut signs = std::collections::HashSet::new();
        for k in 1..=32u64 {
            let p = generator().mul_u64(k);
            let bytes = serialize_compressed(&p);
            let q = deserialize_compressed(&bytes).expect("valid encoding");
            assert!(p.eq_point(&q), "k={k}");
            signs.insert(bytes[0] & 0x20);
            if k >= 6 && signs.len() == 2 {
                break;
            }
        }
        assert_eq!(signs.len(), 2, "both sign-bit values exercised");
    }

    #[test]
    fn compressed_roundtrip_infinity_and_flags() {
        let bytes = serialize_compressed(&Point::infinity());
        assert_eq!(bytes[0], 0xc0);
        assert!(deserialize_compressed(&bytes).unwrap().is_infinity());
        let mut bad = bytes;
        bad[50] = 1;
        assert!(deserialize_compressed(&bad).is_none());
        // Missing compressed flag.
        let mut bytes = serialize_compressed(&generator());
        bytes[0] &= 0x7f;
        assert!(deserialize_compressed(&bytes).is_none());
        // c0 >= p.
        let mut bytes = serialize_compressed(&generator());
        for b in bytes[48..].iter_mut() {
            *b = 0xff;
        }
        assert!(deserialize_compressed(&bytes).is_none());
    }

    #[test]
    fn compressed_rejects_non_subgroup_point() {
        // Perturb x until it lands on the twist but outside the r-subgroup.
        let mut x = Fp2::new(Fp::from_u64(3), Fp::from_u64(5));
        loop {
            let rhs = x.square().mul(&x).add(&b());
            if let Some(y) = rhs.sqrt() {
                let pt = Point::from_affine(&Affine::Coords { x, y });
                if !in_subgroup(&pt) {
                    let mut bytes = [0u8; 96];
                    bytes[..48].copy_from_slice(&x.c1.to_be_bytes());
                    bytes[48..].copy_from_slice(&x.c0.to_be_bytes());
                    bytes[0] |= 0x80;
                    if y_is_largest(&y) {
                        bytes[0] |= 0x20;
                    }
                    assert!(deserialize_compressed(&bytes).is_none());
                    return;
                }
            }
            x = x.add(&Fp2::one());
        }
    }

    #[test]
    fn deserialize_rejects_non_subgroup_point() {
        // A random twist point before cofactor clearing is (overwhelmingly)
        // outside the r-subgroup: construct one by perturbing x until we hit
        // the curve, then check the deserializer's subgroup check fires.
        let mut x = Fp2::new(Fp::from_u64(1), Fp::from_u64(2));
        loop {
            let rhs = x.square().mul(&x).add(&b());
            if let Some(y) = rhs.sqrt() {
                let pt = Point::from_affine(&Affine::Coords { x, y });
                if !pt.mul_nat(&curve_params().r).is_infinity() {
                    let bytes = serialize(&pt);
                    assert!(deserialize(&bytes).is_none());
                    return;
                }
            }
            x = x.add(&Fp2::one());
        }
    }
}
