//! Deterministic per-round committee shuffling.
//!
//! The paper assumes an unpredictable deterministic shuffle (e.g. VRF-based)
//! that reassigns tree positions every round. We substitute a seeded
//! Fisher–Yates keyed by `SHA-256(seed, round)`: identical on every correct
//! process, uniform over permutations, and — in the closed world of the
//! simulations — as unpredictable as a VRF, since the analyses only require
//! that role assignment be uniformly random and common knowledge per round.

use crate::sha256::sha256_many;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic assignment of committee members to tree positions.
///
/// `position_to_member[pos] = member` and `member_to_position` is its
/// inverse. "Position" is the slot in the aggregation overlay (position 0 is
/// the tree root, i.e. the next leader); "member" is the stable identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    position_to_member: Vec<u32>,
    member_to_position: Vec<u32>,
}

impl Assignment {
    /// Shuffles `n` members for `round` with the given 32-byte epoch seed.
    pub fn shuffle(n: usize, seed: &[u8; 32], round: u64) -> Self {
        let digest = sha256_many(&[b"iniva-shuffle", seed, &round.to_be_bytes()]);
        let mut rng = StdRng::from_seed(digest);
        let mut position_to_member: Vec<u32> = (0..n as u32).collect();
        position_to_member.shuffle(&mut rng);
        Self::from_permutation(position_to_member)
    }

    /// Builds an assignment from an explicit permutation
    /// (`position -> member`).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn from_permutation(perm: Vec<u32>) -> Self {
        let n = perm.len();
        let mut inverse = vec![u32::MAX; n];
        for (pos, &member) in perm.iter().enumerate() {
            assert!(
                (member as usize) < n && inverse[member as usize] == u32::MAX,
                "not a permutation"
            );
            inverse[member as usize] = pos as u32;
        }
        Assignment {
            position_to_member: perm,
            member_to_position: inverse,
        }
    }

    /// The identity assignment (position i = member i).
    pub fn identity(n: usize) -> Self {
        Self::from_permutation((0..n as u32).collect())
    }

    /// Member occupying `pos`.
    pub fn member_at(&self, pos: u32) -> u32 {
        self.position_to_member[pos as usize]
    }

    /// Position of `member`.
    pub fn position_of(&self, member: u32) -> u32 {
        self.member_to_position[member as usize]
    }

    /// Committee size.
    pub fn len(&self) -> usize {
        self.position_to_member.len()
    }

    /// True if the committee is empty.
    pub fn is_empty(&self) -> bool {
        self.position_to_member.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_across_calls() {
        let seed = [7u8; 32];
        assert_eq!(
            Assignment::shuffle(20, &seed, 3),
            Assignment::shuffle(20, &seed, 3)
        );
    }

    #[test]
    fn different_rounds_differ() {
        let seed = [7u8; 32];
        assert_ne!(
            Assignment::shuffle(20, &seed, 3),
            Assignment::shuffle(20, &seed, 4)
        );
    }

    #[test]
    fn inverse_is_consistent() {
        let a = Assignment::shuffle(50, &[1u8; 32], 9);
        for pos in 0..50u32 {
            assert_eq!(a.position_of(a.member_at(pos)), pos);
        }
    }

    #[test]
    fn roles_are_roughly_uniform() {
        // Member 0 should be root (position 0) about 1/n of the time.
        let n = 10;
        let seed = [3u8; 32];
        let hits = (0..2000u64)
            .filter(|&r| Assignment::shuffle(n, &seed, r).member_at(0) == 0)
            .count();
        let expected = 2000 / n;
        assert!(
            hits > expected / 2 && hits < expected * 2,
            "hits = {hits}, expected ≈ {expected}"
        );
    }

    proptest! {
        #[test]
        fn always_a_permutation(n in 1usize..200, round in 0u64..1000) {
            let a = Assignment::shuffle(n, &[9u8; 32], round);
            let mut seen = vec![false; n];
            for pos in 0..n as u32 {
                let m = a.member_at(pos) as usize;
                prop_assert!(!seen[m]);
                seen[m] = true;
            }
        }
    }
}
