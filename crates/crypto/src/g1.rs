//! The G1 group: order-`r` subgroup of `E(Fp): y^2 = x^3 + 4`.
//!
//! Provides the derived generator, hash-to-curve (simplified
//! try-and-increment; see crate docs for the substitution rationale),
//! cofactor clearing, subgroup checks and 96-byte uncompressed
//! zcash-format serialization (compatible with `blst`).

use crate::curve::{Affine, Point};
use crate::fields::Fp;
use crate::nat::Nat;
use crate::params::curve_params;
use crate::sha256::sha256_many;
use std::sync::OnceLock;

/// A G1 group element.
pub type G1 = Point<Fp>;

/// The curve coefficient `b = 4`.
pub fn b() -> Fp {
    Fp::from_u64(4)
}

/// A fixed generator of the order-`r` subgroup, derived deterministically by
/// hashing a domain tag to the curve and clearing the cofactor.
///
/// Note: this is *a* generator, not the standards-track generator point; the
/// Iniva protocol only needs some fixed common-knowledge generator. Tests
/// cross-check group laws against `blst` using deserialized blst points.
pub fn generator() -> G1 {
    static GEN: OnceLock<G1> = OnceLock::new();
    *GEN.get_or_init(|| {
        let p = hash_to_curve(b"INIVA-V1-G1-GENERATOR");
        assert!(!p.is_infinity());
        assert!(p.mul_nat(&curve_params().r).is_infinity());
        p
    })
}

/// Maps arbitrary bytes to a point of the order-`r` subgroup.
///
/// Uses hash-and-check ("try-and-increment") with SHA-256 followed by
/// cofactor clearing. Production systems use the constant-time SSWU map of
/// RFC 9380; both realize a random-oracle-style map into G1, which is all
/// the protocol analysis requires.
pub fn hash_to_curve(msg: &[u8]) -> G1 {
    for ctr in 0u32..=u32::MAX {
        let h1 = sha256_many(&[b"iniva-g1-h2c", &ctr.to_be_bytes(), b"/0", msg]);
        let h2 = sha256_many(&[b"iniva-g1-h2c", &ctr.to_be_bytes(), b"/1", msg]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&h1);
        wide[32..].copy_from_slice(&h2);
        let x = Fp::from_nat(&Nat::from_be_bytes(&wide));
        let rhs = x.square().mul(&x).add(&b());
        if let Some(mut y) = rhs.sqrt() {
            // Deterministic sign choice from the hash.
            if h1[31] & 1 == 1 {
                y = y.neg();
            }
            let p = Point::from_affine(&Affine::Coords { x, y });
            let cleared = p.mul_nat(&curve_params().h1);
            if !cleared.is_infinity() {
                return cleared;
            }
        }
    }
    unreachable!("hash_to_curve exhausted the counter space")
}

/// True if the point lies on the curve and in the order-`r` subgroup.
pub fn in_subgroup(p: &G1) -> bool {
    p.is_on_curve(&b()) && p.mul_nat(&curve_params().r).is_infinity()
}

/// Serializes to the 96-byte uncompressed zcash/blst format
/// (big-endian `x || y`; infinity sets the second-MSB flag of byte 0).
pub fn serialize(p: &G1) -> [u8; 96] {
    let mut out = [0u8; 96];
    match p.to_affine() {
        Affine::Infinity => {
            out[0] = 0x40;
        }
        Affine::Coords { x, y } => {
            out[..48].copy_from_slice(&x.to_be_bytes());
            out[48..].copy_from_slice(&y.to_be_bytes());
        }
    }
    out
}

/// Deserializes the 96-byte uncompressed format. Returns `None` for
/// malformed encodings, off-curve points, or points outside the subgroup.
pub fn deserialize(bytes: &[u8; 96]) -> Option<G1> {
    if bytes[0] & 0x80 != 0 {
        return None; // compressed form not supported here
    }
    if bytes[0] & 0x40 != 0 {
        let rest_zero = bytes[1..].iter().all(|&b| b == 0) && bytes[0] == 0x40;
        return rest_zero.then(Point::infinity);
    }
    let x_nat = Nat::from_be_bytes(&bytes[..48]);
    let y_nat = Nat::from_be_bytes(&bytes[48..]);
    let p_mod = &curve_params().p;
    if &x_nat >= p_mod || &y_nat >= p_mod {
        return None;
    }
    let x = Fp::from_nat(&x_nat);
    let y = Fp::from_nat(&y_nat);
    let pt = Point::from_affine(&Affine::Coords { x, y });
    in_subgroup(&pt).then_some(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_in_subgroup() {
        assert!(in_subgroup(&generator()));
    }

    #[test]
    fn hash_to_curve_deterministic_and_distinct() {
        let a = hash_to_curve(b"hello");
        let b1 = hash_to_curve(b"hello");
        let c = hash_to_curve(b"world");
        assert!(a.eq_point(&b1));
        assert!(!a.eq_point(&c));
        assert!(in_subgroup(&a));
        assert!(in_subgroup(&c));
    }

    #[test]
    fn serialization_roundtrip() {
        let p = generator().mul_u64(12345);
        let bytes = serialize(&p);
        let q = deserialize(&bytes).expect("valid encoding");
        assert!(p.eq_point(&q));
    }

    #[test]
    fn serialization_roundtrip_infinity() {
        let bytes = serialize(&Point::infinity());
        let q = deserialize(&bytes).expect("valid encoding");
        assert!(q.is_infinity());
    }

    #[test]
    fn deserialize_rejects_off_curve() {
        let mut bytes = serialize(&generator());
        bytes[95] ^= 1; // corrupt y
        assert!(deserialize(&bytes).is_none());
    }

    #[test]
    fn deserialize_rejects_compressed_flag() {
        let mut bytes = serialize(&generator());
        bytes[0] |= 0x80;
        assert!(deserialize(&bytes).is_none());
    }
}
