//! The G1 group: order-`r` subgroup of `E(Fp): y^2 = x^3 + 4`.
//!
//! Provides the derived generator, hash-to-curve (simplified
//! try-and-increment; see crate docs for the substitution rationale),
//! cofactor clearing, subgroup checks, 96-byte uncompressed and 48-byte
//! compressed zcash-format serialization (compatible with `blst`). The
//! compressed form is what BLS aggregates ship over the live transport:
//! 381 bits of `x` plus three flag bits (compressed / infinity / y-sign),
//! with full on-curve **and** subgroup validation on decode.

use crate::curve::{Affine, Point};
use crate::fields::Fp;
use crate::nat::Nat;
use crate::params::curve_params;
use crate::sha256::sha256_many;
use std::sync::OnceLock;

/// A G1 group element.
pub type G1 = Point<Fp>;

/// The curve coefficient `b = 4`.
pub fn b() -> Fp {
    Fp::from_u64(4)
}

/// A fixed generator of the order-`r` subgroup, derived deterministically by
/// hashing a domain tag to the curve and clearing the cofactor.
///
/// Note: this is *a* generator, not the standards-track generator point; the
/// Iniva protocol only needs some fixed common-knowledge generator. Tests
/// cross-check group laws against `blst` using deserialized blst points.
pub fn generator() -> G1 {
    static GEN: OnceLock<G1> = OnceLock::new();
    *GEN.get_or_init(|| {
        let p = hash_to_curve(b"INIVA-V1-G1-GENERATOR");
        assert!(!p.is_infinity());
        assert!(p.mul_nat(&curve_params().r).is_infinity());
        p
    })
}

/// Maps arbitrary bytes to a point of the order-`r` subgroup.
///
/// Uses hash-and-check ("try-and-increment") with SHA-256 followed by
/// cofactor clearing. Production systems use the constant-time SSWU map of
/// RFC 9380; both realize a random-oracle-style map into G1, which is all
/// the protocol analysis requires.
pub fn hash_to_curve(msg: &[u8]) -> G1 {
    for ctr in 0u32..=u32::MAX {
        let h1 = sha256_many(&[b"iniva-g1-h2c", &ctr.to_be_bytes(), b"/0", msg]);
        let h2 = sha256_many(&[b"iniva-g1-h2c", &ctr.to_be_bytes(), b"/1", msg]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&h1);
        wide[32..].copy_from_slice(&h2);
        let x = Fp::from_nat(&Nat::from_be_bytes(&wide));
        let rhs = x.square().mul(&x).add(&b());
        if let Some(mut y) = rhs.sqrt() {
            // Deterministic sign choice from the hash.
            if h1[31] & 1 == 1 {
                y = y.neg();
            }
            let p = Point::from_affine(&Affine::Coords { x, y });
            let cleared = p.mul_nat(&curve_params().h1);
            if !cleared.is_infinity() {
                return cleared;
            }
        }
    }
    unreachable!("hash_to_curve exhausted the counter space")
}

/// True if the point lies on the curve and in the order-`r` subgroup.
pub fn in_subgroup(p: &G1) -> bool {
    p.is_on_curve(&b()) && p.mul_nat(&curve_params().r).is_infinity()
}

/// Serializes to the 96-byte uncompressed zcash/blst format
/// (big-endian `x || y`; infinity sets the second-MSB flag of byte 0).
pub fn serialize(p: &G1) -> [u8; 96] {
    let mut out = [0u8; 96];
    match p.to_affine() {
        Affine::Infinity => {
            out[0] = 0x40;
        }
        Affine::Coords { x, y } => {
            out[..48].copy_from_slice(&x.to_be_bytes());
            out[48..].copy_from_slice(&y.to_be_bytes());
        }
    }
    out
}

/// True when `y` is the lexicographically largest of `{y, -y}` — the
/// compressed-format sign convention of the zcash/blst encoding.
fn y_is_largest(y: &Fp) -> bool {
    y.to_nat() > y.neg().to_nat()
}

/// Serializes to the 48-byte compressed zcash/blst format: big-endian `x`
/// with flag bits in byte 0 — `0x80` (compressed), `0x40` (infinity),
/// `0x20` (`y` is the lexicographically largest root).
pub fn serialize_compressed(p: &G1) -> [u8; 48] {
    let mut out = [0u8; 48];
    match p.to_affine() {
        Affine::Infinity => {
            out[0] = 0xc0;
        }
        Affine::Coords { x, y } => {
            out.copy_from_slice(&x.to_be_bytes());
            out[0] |= 0x80;
            if y_is_largest(&y) {
                out[0] |= 0x20;
            }
        }
    }
    out
}

/// Deserializes the 48-byte compressed format. Returns `None` for
/// malformed encodings (missing compressed flag, non-canonical infinity,
/// `x >= p`), `x` values off the curve, or decompressed points outside the
/// order-`r` subgroup — the checks a verifier must run before a hostile
/// peer's point touches a pairing.
pub fn deserialize_compressed(bytes: &[u8; 48]) -> Option<G1> {
    if bytes[0] & 0x80 == 0 {
        return None; // uncompressed form not accepted here
    }
    if bytes[0] & 0x40 != 0 {
        let rest_zero = bytes[0] == 0xc0 && bytes[1..].iter().all(|&b| b == 0);
        return rest_zero.then(Point::infinity);
    }
    let sign = bytes[0] & 0x20 != 0;
    let mut x_bytes = *bytes;
    x_bytes[0] &= 0x1f;
    let x_nat = Nat::from_be_bytes(&x_bytes);
    let p_mod = &curve_params().p;
    if &x_nat >= p_mod {
        return None;
    }
    let x = Fp::from_nat(&x_nat);
    let rhs = x.square().mul(&x).add(&b());
    let mut y = rhs.sqrt()?;
    if y_is_largest(&y) != sign {
        y = y.neg();
    }
    let pt = Point::from_affine(&Affine::Coords { x, y });
    in_subgroup(&pt).then_some(pt)
}

/// Deserializes the 96-byte uncompressed format. Returns `None` for
/// malformed encodings, off-curve points, or points outside the subgroup.
pub fn deserialize(bytes: &[u8; 96]) -> Option<G1> {
    if bytes[0] & 0x80 != 0 {
        return None; // compressed form not supported here
    }
    if bytes[0] & 0x40 != 0 {
        let rest_zero = bytes[1..].iter().all(|&b| b == 0) && bytes[0] == 0x40;
        return rest_zero.then(Point::infinity);
    }
    let x_nat = Nat::from_be_bytes(&bytes[..48]);
    let y_nat = Nat::from_be_bytes(&bytes[48..]);
    let p_mod = &curve_params().p;
    if &x_nat >= p_mod || &y_nat >= p_mod {
        return None;
    }
    let x = Fp::from_nat(&x_nat);
    let y = Fp::from_nat(&y_nat);
    let pt = Point::from_affine(&Affine::Coords { x, y });
    in_subgroup(&pt).then_some(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_in_subgroup() {
        assert!(in_subgroup(&generator()));
    }

    #[test]
    fn hash_to_curve_deterministic_and_distinct() {
        let a = hash_to_curve(b"hello");
        let b1 = hash_to_curve(b"hello");
        let c = hash_to_curve(b"world");
        assert!(a.eq_point(&b1));
        assert!(!a.eq_point(&c));
        assert!(in_subgroup(&a));
        assert!(in_subgroup(&c));
    }

    #[test]
    fn serialization_roundtrip() {
        let p = generator().mul_u64(12345);
        let bytes = serialize(&p);
        let q = deserialize(&bytes).expect("valid encoding");
        assert!(p.eq_point(&q));
    }

    #[test]
    fn serialization_roundtrip_infinity() {
        let bytes = serialize(&Point::infinity());
        let q = deserialize(&bytes).expect("valid encoding");
        assert!(q.is_infinity());
    }

    #[test]
    fn deserialize_rejects_off_curve() {
        let mut bytes = serialize(&generator());
        bytes[95] ^= 1; // corrupt y
        assert!(deserialize(&bytes).is_none());
    }

    #[test]
    fn deserialize_rejects_compressed_flag() {
        let mut bytes = serialize(&generator());
        bytes[0] |= 0x80;
        assert!(deserialize(&bytes).is_none());
    }

    #[test]
    fn compressed_roundtrip_both_signs() {
        // Consecutive multiples hit both y-sign classes.
        for k in 1..=8u64 {
            let p = generator().mul_u64(k);
            let bytes = serialize_compressed(&p);
            assert_eq!(bytes[0] & 0x80, 0x80, "compressed flag set");
            let q = deserialize_compressed(&bytes).expect("valid encoding");
            assert!(p.eq_point(&q), "k={k}");
        }
        // The two signs actually occur (otherwise the flag is untested).
        let signs: std::collections::HashSet<u8> = (1..=8u64)
            .map(|k| serialize_compressed(&generator().mul_u64(k))[0] & 0x20)
            .collect();
        assert_eq!(signs.len(), 2, "both sign-bit values exercised");
    }

    #[test]
    fn compressed_roundtrip_infinity() {
        let bytes = serialize_compressed(&Point::infinity());
        assert_eq!(bytes[0], 0xc0);
        assert!(bytes[1..].iter().all(|&b| b == 0));
        assert!(deserialize_compressed(&bytes).unwrap().is_infinity());
        // Infinity with stray bits is rejected, not normalized.
        let mut bad = bytes;
        bad[20] = 1;
        assert!(deserialize_compressed(&bad).is_none());
        let mut bad = bytes;
        bad[0] |= 0x20;
        assert!(deserialize_compressed(&bad).is_none());
    }

    #[test]
    fn compressed_rejects_uncompressed_flag_and_oversized_x() {
        let mut bytes = serialize_compressed(&generator());
        bytes[0] &= 0x7f; // clear the compressed flag
        assert!(deserialize_compressed(&bytes).is_none());
        // x >= p: all-ones mantissa is far above the 381-bit modulus.
        let mut bytes = [0xffu8; 48];
        bytes[0] = 0x9f;
        assert!(deserialize_compressed(&bytes).is_none());
    }

    #[test]
    fn compressed_rejects_x_off_curve() {
        // Walk x upward from a valid point until x^3 + 4 is a non-residue;
        // that encoding must fail decompression (sqrt has no root).
        let p = generator().mul_u64(5);
        let Affine::Coords { mut x, .. } = p.to_affine() else {
            panic!("finite point");
        };
        loop {
            x = x.add(&Fp::from_u64(1));
            let rhs = x.square().mul(&x).add(&b());
            if rhs.sqrt().is_none() {
                let mut bytes = [0u8; 48];
                bytes.copy_from_slice(&x.to_be_bytes());
                bytes[0] |= 0x80;
                assert!(deserialize_compressed(&bytes).is_none());
                return;
            }
        }
    }

    #[test]
    fn compressed_rejects_non_subgroup_point() {
        // A curve point outside the r-subgroup (found by perturbing x until
        // the curve equation holds but cofactor clearing is missing) must
        // be rejected by the decoder's subgroup check.
        let mut x = Fp::from_u64(1);
        loop {
            let rhs = x.square().mul(&x).add(&b());
            if let Some(y) = rhs.sqrt() {
                let pt = Point::from_affine(&Affine::Coords { x, y });
                if !in_subgroup(&pt) {
                    let mut bytes = [0u8; 48];
                    bytes.copy_from_slice(&x.to_be_bytes());
                    bytes[0] |= 0x80;
                    if y_is_largest(&y) {
                        bytes[0] |= 0x20;
                    }
                    assert!(deserialize_compressed(&bytes).is_none());
                    return;
                }
            }
            x = x.add(&Fp::from_u64(1));
        }
    }
}
