//! Cubic extension `Fp6 = Fp2[v] / (v^3 - ξ)` with `ξ = 1 + u`.

use super::{Field, Fp2};

/// An element `c0 + c1·v + c2·v^2` of `Fp6`, where `v^3 = ξ`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Fp6 {
    /// Coefficient of `1`.
    pub c0: Fp2,
    /// Coefficient of `v`.
    pub c1: Fp2,
    /// Coefficient of `v^2`.
    pub c2: Fp2,
}

impl Fp6 {
    /// Constructs `c0 + c1·v + c2·v^2`.
    pub fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Fp6 { c0, c1, c2 }
    }

    /// Embeds an `Fp2` element.
    pub fn from_fp2(c0: Fp2) -> Self {
        Fp6 {
            c0,
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    /// Multiplies by `v`: `(c0, c1, c2) -> (ξ·c2, c0, c1)`.
    pub fn mul_by_v(&self) -> Self {
        Fp6 {
            c0: self.c2.mul_by_xi(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Scales every coefficient by an `Fp2` element.
    pub fn scale(&self, k: &Fp2) -> Self {
        Fp6 {
            c0: self.c0.mul(k),
            c1: self.c1.mul(k),
            c2: self.c2.mul(k),
        }
    }
}

impl Field for Fp6 {
    fn zero() -> Self {
        Fp6::new(Fp2::zero(), Fp2::zero(), Fp2::zero())
    }
    fn one() -> Self {
        Fp6::new(Fp2::one(), Fp2::zero(), Fp2::zero())
    }
    fn add(&self, o: &Self) -> Self {
        Fp6::new(self.c0.add(&o.c0), self.c1.add(&o.c1), self.c2.add(&o.c2))
    }
    fn sub(&self, o: &Self) -> Self {
        Fp6::new(self.c0.sub(&o.c0), self.c1.sub(&o.c1), self.c2.sub(&o.c2))
    }
    fn neg(&self) -> Self {
        Fp6::new(self.c0.neg(), self.c1.neg(), self.c2.neg())
    }
    fn mul(&self, o: &Self) -> Self {
        // Schoolbook with v^3 = ξ reduction.
        let a = (self.c0, self.c1, self.c2);
        let b = (o.c0, o.c1, o.c2);
        let v0 = a.0.mul(&b.0);
        let v1 = a.1.mul(&b.1);
        let v2 = a.2.mul(&b.2);
        // c0 = v0 + ξ((a1+a2)(b1+b2) - v1 - v2)
        let c0 =
            a.1.add(&a.2)
                .mul(&b.1.add(&b.2))
                .sub(&v1)
                .sub(&v2)
                .mul_by_xi()
                .add(&v0);
        // c1 = (a0+a1)(b0+b1) - v0 - v1 + ξ v2
        let c1 =
            a.0.add(&a.1)
                .mul(&b.0.add(&b.1))
                .sub(&v0)
                .sub(&v1)
                .add(&v2.mul_by_xi());
        // c2 = (a0+a2)(b0+b2) - v0 - v2 + v1
        let c2 = a.0.add(&a.2).mul(&b.0.add(&b.2)).sub(&v0).sub(&v2).add(&v1);
        Fp6::new(c0, c1, c2)
    }
    fn inverse(&self) -> Option<Self> {
        // Standard cubic-extension inversion.
        let t0 = self.c0.square().sub(&self.c1.mul(&self.c2).mul_by_xi());
        let t1 = self.c2.square().mul_by_xi().sub(&self.c0.mul(&self.c1));
        let t2 = self.c1.square().sub(&self.c0.mul(&self.c2));
        let denom = self
            .c0
            .mul(&t0)
            .add(&self.c2.mul(&t1).mul_by_xi())
            .add(&self.c1.mul(&t2).mul_by_xi());
        let dinv = denom.inverse()?;
        Some(Fp6 {
            c0: t0.mul(&dinv),
            c1: t1.mul(&dinv),
            c2: t2.mul(&dinv),
        })
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }
    fn from_u64(v: u64) -> Self {
        Fp6::from_fp2(Fp2::from_u64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fp;
    use proptest::prelude::*;

    fn arb_fp2() -> impl Strategy<Value = Fp2> {
        (any::<u64>(), any::<u64>())
            .prop_map(|(a, b)| Fp2::new(Fp::from_u64(a).square(), Fp::from_u64(b).square()))
    }

    fn arb_fp6() -> impl Strategy<Value = Fp6> {
        (arb_fp2(), arb_fp2(), arb_fp2()).prop_map(|(a, b, c)| Fp6::new(a, b, c))
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        assert_eq!(v.mul(&v).mul(&v), Fp6::from_fp2(Fp2::xi()));
    }

    #[test]
    fn mul_by_v_matches_generic() {
        let a = Fp6::new(
            Fp2::new(Fp::from_u64(1), Fp::from_u64(2)),
            Fp2::new(Fp::from_u64(3), Fp::from_u64(4)),
            Fp2::new(Fp::from_u64(5), Fp::from_u64(6)),
        );
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        assert_eq!(a.mul_by_v(), a.mul(&v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn fp6_inverse_inverts(a in arb_fp6()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.inverse().unwrap()), Fp6::one());
        }

        #[test]
        fn fp6_mul_commutes(a in arb_fp6(), b in arb_fp6()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn fp6_mul_associates(a in arb_fp6(), b in arb_fp6(), c in arb_fp6()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn fp6_distributes(a in arb_fp6(), b in arb_fp6(), c in arb_fp6()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }
}
