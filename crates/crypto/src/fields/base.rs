//! The base field `Fp` (381-bit) and scalar field `Fr` (255-bit).

use super::mont::mont_field;
use super::Field;
use crate::params::{fp_params, fr_params};

mont_field!(
    /// An element of the BLS12-381 base field `Fp` (Montgomery form).
    Fp,
    6,
    fp_params
);

mont_field!(
    /// An element of the BLS12-381 scalar field `Fr` (Montgomery form).
    Fr,
    4,
    fr_params
);

impl Field for Fp {
    fn zero() -> Self {
        Fp::zero()
    }
    fn one() -> Self {
        Fp::one()
    }
    fn add(&self, other: &Self) -> Self {
        Fp::add(self, other)
    }
    fn sub(&self, other: &Self) -> Self {
        Fp::sub(self, other)
    }
    fn neg(&self) -> Self {
        Fp::neg(self)
    }
    fn mul(&self, other: &Self) -> Self {
        Fp::mul(self, other)
    }
    fn inverse(&self) -> Option<Self> {
        Fp::inverse(self)
    }
    fn is_zero(&self) -> bool {
        Fp::is_zero(self)
    }
    fn from_u64(v: u64) -> Self {
        Fp::from_u64(v)
    }
}

impl Field for Fr {
    fn zero() -> Self {
        Fr::zero()
    }
    fn one() -> Self {
        Fr::one()
    }
    fn add(&self, other: &Self) -> Self {
        Fr::add(self, other)
    }
    fn sub(&self, other: &Self) -> Self {
        Fr::sub(self, other)
    }
    fn neg(&self) -> Self {
        Fr::neg(self)
    }
    fn mul(&self, other: &Self) -> Self {
        Fr::mul(self, other)
    }
    fn inverse(&self) -> Option<Self> {
        Fr::inverse(self)
    }
    fn is_zero(&self) -> bool {
        Fr::is_zero(self)
    }
    fn from_u64(v: u64) -> Self {
        Fr::from_u64(v)
    }
}

impl Fr {
    /// Derives a scalar from 64 uniform bytes (e.g. hash output), reducing
    /// mod `r`. The 2^512 domain makes the reduction bias negligible.
    pub fn from_wide_bytes(bytes: &[u8; 64]) -> Self {
        Self::from_be_bytes_reduced(bytes)
    }

    /// The canonical little-endian limb representation of the scalar value
    /// (not Montgomery form), for use as an exponent / scalar multiplier.
    pub fn to_scalar_limbs(&self) -> [u64; 4] {
        self.to_nat().to_limbs(4).try_into().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::Nat;
    use proptest::prelude::*;

    fn arb_fp() -> impl Strategy<Value = Fp> {
        proptest::array::uniform6(any::<u64>()).prop_map(|l| Fp::from_nat(&Nat::from_limbs(&l)))
    }

    fn arb_fr() -> impl Strategy<Value = Fr> {
        proptest::array::uniform4(any::<u64>()).prop_map(|l| Fr::from_nat(&Nat::from_limbs(&l)))
    }

    #[test]
    fn fp_basic_identities() {
        let a = Fp::from_u64(7);
        let b = Fp::from_u64(11);
        assert_eq!(a.mul(&b), Fp::from_u64(77));
        assert_eq!(a.add(&b), Fp::from_u64(18));
        assert_eq!(b.sub(&a), Fp::from_u64(4));
        assert_eq!(a.sub(&b).add(&b), a);
        assert_eq!(Fp::from_u64(0), Fp::zero());
        assert!(Fp::zero().inverse().is_none());
    }

    #[test]
    fn fp_to_nat_roundtrip() {
        let a = Fp::from_u64(123_456_789);
        assert_eq!(a.to_nat(), Nat::from_u64(123_456_789));
        assert_eq!(Fp::from_nat(&a.to_nat()), a);
    }

    #[test]
    fn fp_sqrt_of_squares() {
        for v in [2u64, 3, 4, 5, 1_000_003] {
            let a = Fp::from_u64(v);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg(), "v={v}");
        }
    }

    #[test]
    fn fp_legendre_consistency() {
        // Squares are residues.
        let a = Fp::from_u64(987_654_321);
        assert_eq!(a.square().legendre(), 1);
        assert_eq!(Fp::zero().legendre(), 0);
    }

    #[test]
    fn fr_scalar_limbs_roundtrip() {
        let s = Fr::from_u64(0xdeadbeef);
        assert_eq!(s.to_scalar_limbs(), [0xdeadbeef, 0, 0, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fp_mul_commutes(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn fp_mul_associates(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn fp_distributes(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn fp_inverse_inverts(a in arb_fp()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.inverse().unwrap()), Fp::one());
        }

        #[test]
        fn fp_pow_matches_repeated_mul(a in arb_fp(), e in 0u64..64) {
            let mut expect = Fp::one();
            for _ in 0..e {
                expect = expect.mul(&a);
            }
            prop_assert_eq!(a.pow(&[e]), expect);
        }

        #[test]
        fn fr_inverse_inverts(a in arb_fr()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.inverse().unwrap()), Fr::one());
        }

        #[test]
        fn fp_add_neg_is_zero(a in arb_fp()) {
            prop_assert_eq!(a.add(&a.neg()), Fp::zero());
        }

        #[test]
        fn fp_bytes_roundtrip(a in arb_fp()) {
            prop_assert_eq!(Fp::from_be_bytes_reduced(&a.to_be_bytes()), a);
        }
    }
}
