//! Generic Montgomery-form modular arithmetic over fixed-width limbs.
//!
//! All per-field constants (Montgomery radix powers, the word inverse, the
//! inversion/sqrt exponents) are derived from the modulus at startup via
//! [`MontParams::derive`], so no magic constants are transcribed anywhere.
//!
//! The CIOS (coarsely integrated operand scanning) multiplication used here
//! is the textbook algorithm; a single conditional subtraction suffices
//! because intermediate results stay below `2m`.

use crate::nat::Nat;

/// Derived parameters of a Montgomery field with `N` 64-bit limbs.
#[derive(Debug)]
pub struct MontParams<const N: usize> {
    /// The prime modulus `m`, little-endian limbs.
    pub modulus: [u64; N],
    /// The modulus as a [`Nat`] for slow-path computations.
    pub modulus_nat: Nat,
    /// `-m^{-1} mod 2^64`.
    pub inv: u64,
    /// `R mod m` where `R = 2^(64N)` — the Montgomery form of `1`.
    pub r1: [u64; N],
    /// `R^2 mod m` — used to convert into Montgomery form.
    pub r2: [u64; N],
    /// `m - 2`, the Fermat inversion exponent.
    pub m_minus_2: [u64; N],
    /// `(m + 1) / 4`; a valid sqrt exponent iff [`Self::sqrt_3mod4`].
    pub sqrt_exp: [u64; N],
    /// Whether `m ≡ 3 (mod 4)` so `a^((m+1)/4)` computes square roots.
    pub sqrt_3mod4: bool,
    /// `(m - 1) / 2`, the Euler/Legendre exponent.
    pub legendre_exp: [u64; N],
}

impl<const N: usize> MontParams<N> {
    /// Derives every constant from the odd prime `modulus`.
    ///
    /// # Panics
    /// Panics if `modulus` is even or does not fit in `N` limbs.
    pub fn derive(modulus: &Nat) -> Self {
        assert!(modulus.bit(0), "modulus must be odd");
        let m_limbs: [u64; N] = modulus
            .to_limbs(N)
            .try_into()
            .expect("modulus limb count mismatch");
        // Word inverse by Newton iteration: each step doubles the number of
        // correct low bits; 6 steps reach 64 bits from the initial 3.
        let m0 = m_limbs[0];
        let mut inv = m0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let inv = inv.wrapping_neg();

        let r1 = Nat::one().shl(64 * N).rem(modulus);
        let r2 = Nat::one().shl(128 * N).rem(modulus);
        let two = Nat::from_u64(2);
        let m_minus_2 = modulus.sub(&two);
        let m_plus_1 = modulus.add(&Nat::one());
        let sqrt_3mod4 = modulus.low_u64() & 3 == 3;
        let sqrt_exp = m_plus_1.shr1().shr1();
        let legendre_exp = modulus.sub(&Nat::one()).shr1();

        let arr = |n: &Nat| -> [u64; N] { n.to_limbs(N).try_into().unwrap() };
        MontParams {
            modulus: m_limbs,
            modulus_nat: modulus.clone(),
            inv,
            r1: arr(&r1),
            r2: arr(&r2),
            m_minus_2: arr(&m_minus_2),
            sqrt_exp: arr(&sqrt_exp),
            sqrt_3mod4,
            legendre_exp: arr(&legendre_exp),
        }
    }
}

/// `a + b*c + carry` returning `(low, high)` words.
#[inline(always)]
pub fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a + b + carry` returning `(sum, carry)`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a - b - borrow` returning `(diff, borrow)`.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, (t >> 127) as u64)
}

/// `true` if `a >= b` as little-endian `N`-limb integers.
#[inline]
pub fn geq<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    for i in (0..N).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a - b` assuming `a >= b`.
#[inline]
pub fn sub_noborrow<const N: usize>(a: &[u64; N], b: &[u64; N]) -> [u64; N] {
    let mut out = [0u64; N];
    let mut borrow = 0;
    for i in 0..N {
        let (d, br) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = br;
    }
    debug_assert_eq!(borrow, 0);
    out
}

/// Montgomery multiplication `a * b * R^{-1} mod m` (CIOS).
#[inline]
pub fn mont_mul<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N], inv: u64) -> [u64; N] {
    let mut t = [0u64; N];
    let mut t_hi = 0u64; // word N
    #[allow(unused_assignments)]
    let mut t_top = 0u64; // word N+1 (at most 1)
    for &bi in b.iter() {
        // t += a * bi
        let mut carry = 0u64;
        for j in 0..N {
            let (lo, hi) = mac(t[j], a[j], bi, carry);
            t[j] = lo;
            carry = hi;
        }
        let (s, c) = adc(t_hi, carry, 0);
        t_hi = s;
        t_top = c;
        // Reduce: add k*m so the low word cancels, then shift down one word.
        let k = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], k, m[0], 0);
        for j in 1..N {
            let (lo, hi) = mac(t[j], k, m[j], carry);
            t[j - 1] = lo;
            carry = hi;
        }
        let (s, c) = adc(t_hi, carry, 0);
        t[N - 1] = s;
        t_hi = t_top + c;
    }
    if t_hi != 0 || geq(&t, m) {
        t = sub_noborrow(&t, m);
    }
    t
}

/// Modular addition of values already reduced below `m`.
#[inline]
pub fn mod_add<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N]) -> [u64; N] {
    let mut out = [0u64; N];
    let mut carry = 0;
    for i in 0..N {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
    }
    if carry != 0 || geq(&out, m) {
        // When carry is set, the "virtual" bit 64N makes out >= m; the wrap
        // from sub_noborrow is exactly the mod-2^(64N) arithmetic we need.
        let mut borrow = 0;
        let mut res = [0u64; N];
        for i in 0..N {
            let (d, br) = sbb(out[i], m[i], borrow);
            res[i] = d;
            borrow = br;
        }
        debug_assert!(carry == 1 || borrow == 0);
        res
    } else {
        out
    }
}

/// Modular subtraction of values already reduced below `m`.
#[inline]
pub fn mod_sub<const N: usize>(a: &[u64; N], b: &[u64; N], m: &[u64; N]) -> [u64; N] {
    if geq(a, b) {
        sub_noborrow(a, b)
    } else {
        let t = mod_add_raw(a, m); // a + m, no reduction (fits: a < m so a+m < 2m < 2^(64N+1))
                                   // a + m may carry past N limbs only if m's top bit region is full;
                                   // for our 381/255-bit moduli in 384/256-bit limbs it never does.
        sub_noborrow(&t, b)
    }
}

#[inline]
fn mod_add_raw<const N: usize>(a: &[u64; N], b: &[u64; N]) -> [u64; N] {
    let mut out = [0u64; N];
    let mut carry = 0;
    for i in 0..N {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
    }
    debug_assert_eq!(
        carry, 0,
        "mod_add_raw overflow: modulus too wide for N limbs"
    );
    out
}

/// Declares a concrete Montgomery field type backed by [`MontParams`].
///
/// `$name` is the type, `$n` the limb count and `$params` a
/// `fn() -> &'static MontParams<$n>` providing derived constants.
macro_rules! mont_field {
    ($(#[$attr:meta])* $name:ident, $n:expr, $params:path) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) [u64; $n]);

        impl $name {
            /// The additive identity.
            pub fn zero() -> Self {
                $name([0u64; $n])
            }

            /// The multiplicative identity.
            pub fn one() -> Self {
                $name($params().r1)
            }

            /// Embeds a small integer.
            pub fn from_u64(v: u64) -> Self {
                let mut limbs = [0u64; $n];
                limbs[0] = v;
                // Into Montgomery form.
                let p = $params();
                $name($crate::fields::mont::mont_mul(&limbs, &p.r2, &p.modulus, p.inv))
            }

            /// Embeds a [`Nat`] (reduced mod the field modulus).
            pub fn from_nat(v: &$crate::nat::Nat) -> Self {
                let p = $params();
                let reduced = v.rem(&p.modulus_nat);
                let limbs: [u64; $n] = reduced.to_limbs($n).try_into().unwrap();
                $name($crate::fields::mont::mont_mul(&limbs, &p.r2, &p.modulus, p.inv))
            }

            /// Canonical (non-Montgomery) value.
            pub fn to_nat(&self) -> $crate::nat::Nat {
                let p = $params();
                let one = {
                    let mut l = [0u64; $n];
                    l[0] = 1;
                    l
                };
                let canon = $crate::fields::mont::mont_mul(&self.0, &one, &p.modulus, p.inv);
                $crate::nat::Nat::from_limbs(&canon)
            }

            /// Parses big-endian bytes, reducing mod the modulus.
            pub fn from_be_bytes_reduced(bytes: &[u8]) -> Self {
                Self::from_nat(&$crate::nat::Nat::from_be_bytes(bytes))
            }

            /// Canonical big-endian byte encoding, fixed width (`8 * N` bytes).
            pub fn to_be_bytes(&self) -> [u8; $n * 8] {
                let nat = self.to_nat();
                let limbs = nat.to_limbs($n);
                let mut out = [0u8; $n * 8];
                for (i, l) in limbs.iter().rev().enumerate() {
                    out[i * 8..i * 8 + 8].copy_from_slice(&l.to_be_bytes());
                }
                out
            }

            /// True for the additive identity.
            pub fn is_zero(&self) -> bool {
                self.0.iter().all(|&l| l == 0)
            }

            /// Field addition.
            #[inline]
            pub fn add(&self, other: &Self) -> Self {
                let p = $params();
                $name($crate::fields::mont::mod_add(&self.0, &other.0, &p.modulus))
            }

            /// Field subtraction.
            #[inline]
            pub fn sub(&self, other: &Self) -> Self {
                let p = $params();
                $name($crate::fields::mont::mod_sub(&self.0, &other.0, &p.modulus))
            }

            /// Additive inverse.
            #[inline]
            pub fn neg(&self) -> Self {
                Self::zero().sub(self)
            }

            /// Doubling.
            #[inline]
            pub fn double(&self) -> Self {
                self.add(self)
            }

            /// Field multiplication.
            #[inline]
            pub fn mul(&self, other: &Self) -> Self {
                let p = $params();
                $name($crate::fields::mont::mont_mul(&self.0, &other.0, &p.modulus, p.inv))
            }

            /// Squaring.
            #[inline]
            pub fn square(&self) -> Self {
                self.mul(self)
            }

            /// Exponentiation by little-endian limbs (square-and-multiply).
            pub fn pow(&self, exp: &[u64]) -> Self {
                let mut res = Self::one();
                let mut started = false;
                for &limb in exp.iter().rev() {
                    for bit in (0..64).rev() {
                        if started {
                            res = res.square();
                        }
                        if (limb >> bit) & 1 == 1 {
                            if started {
                                res = res.mul(self);
                            } else {
                                res = *self;
                                started = true;
                            }
                        }
                    }
                }
                if started {
                    res
                } else {
                    Self::one()
                }
            }

            /// Multiplicative inverse (`None` for zero), via Fermat.
            pub fn inverse(&self) -> Option<Self> {
                if self.is_zero() {
                    return None;
                }
                Some(self.pow(&$params().m_minus_2))
            }

            /// Square root for moduli `≡ 3 (mod 4)`; `None` if no root exists.
            ///
            /// # Panics
            /// Panics if the modulus is not `≡ 3 (mod 4)`.
            pub fn sqrt(&self) -> Option<Self> {
                let p = $params();
                assert!(p.sqrt_3mod4, "sqrt() requires modulus = 3 mod 4");
                let cand = self.pow(&p.sqrt_exp);
                if cand.square() == *self {
                    Some(cand)
                } else {
                    None
                }
            }

            /// Legendre symbol: 1 (residue), -1 (non-residue), 0 (zero).
            pub fn legendre(&self) -> i32 {
                if self.is_zero() {
                    return 0;
                }
                let e = self.pow(&$params().legendre_exp);
                if e == Self::one() {
                    1
                } else {
                    -1
                }
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}(0x", stringify!($name))?;
                for b in self.to_be_bytes() {
                    write!(f, "{:02x}", b)?;
                }
                write!(f, ")")
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::zero()
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name::add(&self, &rhs)
            }
        }
        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name::sub(&self, &rhs)
            }
        }
        impl std::ops::Mul for $name {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name::mul(&self, &rhs)
            }
        }
        impl std::ops::Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name::neg(&self)
            }
        }
    };
}

pub(crate) use mont_field;
