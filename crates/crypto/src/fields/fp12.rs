//! Quadratic extension `Fp12 = Fp6[w] / (w^2 - v)`.
//!
//! This is the target group field of the BLS12-381 pairing. The conjugation
//! map `a + b·w -> a - b·w` equals the Frobenius power `x -> x^(p^6)`, which
//! the final exponentiation's "easy part" relies on.

use super::{Field, Fp2, Fp6};

/// An element `c0 + c1·w` of `Fp12`, where `w^2 = v`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Fp12 {
    /// Coefficient of `1`.
    pub c0: Fp6,
    /// Coefficient of `w`.
    pub c1: Fp6,
}

impl Fp12 {
    /// Constructs `c0 + c1·w`.
    pub fn new(c0: Fp6, c1: Fp6) -> Self {
        Fp12 { c0, c1 }
    }

    /// Embeds an `Fp6` element.
    pub fn from_fp6(c0: Fp6) -> Self {
        Fp12 {
            c0,
            c1: Fp6::zero(),
        }
    }

    /// Embeds an `Fp2` element.
    pub fn from_fp2(c: Fp2) -> Self {
        Fp12::from_fp6(Fp6::from_fp2(c))
    }

    /// The generator `w` with `w^2 = v`.
    pub fn w() -> Self {
        Fp12 {
            c0: Fp6::zero(),
            c1: Fp6::one(),
        }
    }

    /// Conjugation `c0 - c1·w`, equal to the Frobenius map `x -> x^(p^6)`.
    pub fn conjugate(&self) -> Self {
        Fp12 {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Fp12::new(Fp6::zero(), Fp6::zero())
    }
    fn one() -> Self {
        Fp12::new(Fp6::one(), Fp6::zero())
    }
    fn add(&self, o: &Self) -> Self {
        Fp12::new(self.c0.add(&o.c0), self.c1.add(&o.c1))
    }
    fn sub(&self, o: &Self) -> Self {
        Fp12::new(self.c0.sub(&o.c0), self.c1.sub(&o.c1))
    }
    fn neg(&self) -> Self {
        Fp12::new(self.c0.neg(), self.c1.neg())
    }
    fn mul(&self, o: &Self) -> Self {
        // Karatsuba with w^2 = v.
        let v0 = self.c0.mul(&o.c0);
        let v1 = self.c1.mul(&o.c1);
        let s = self.c0.add(&self.c1);
        let t = o.c0.add(&o.c1);
        Fp12 {
            c0: v0.add(&v1.mul_by_v()),
            c1: s.mul(&t).sub(&v0).sub(&v1),
        }
    }
    fn square(&self) -> Self {
        // (a + bw)^2 = a^2 + v b^2 + 2ab w, via Karatsuba-like shortcut.
        let ab = self.c0.mul(&self.c1);
        let s = self.c0.add(&self.c1);
        let t = self.c0.add(&self.c1.mul_by_v());
        let c0 = s.mul(&t).sub(&ab).sub(&ab.mul_by_v());
        Fp12 {
            c0,
            c1: ab.double(),
        }
    }
    fn inverse(&self) -> Option<Self> {
        // (a + bw)^{-1} = (a - bw) / (a^2 - v b^2).
        let denom = self.c0.square().sub(&self.c1.square().mul_by_v());
        let dinv = denom.inverse()?;
        Some(Fp12 {
            c0: self.c0.mul(&dinv),
            c1: self.c1.mul(&dinv).neg(),
        })
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
    fn from_u64(v: u64) -> Self {
        Fp12::from_fp6(Fp6::from_u64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fp;
    use proptest::prelude::*;

    fn arb_fp6() -> impl Strategy<Value = Fp6> {
        proptest::array::uniform6(any::<u64>()).prop_map(|v| {
            Fp6::new(
                Fp2::new(Fp::from_u64(v[0]).square(), Fp::from_u64(v[1]).square()),
                Fp2::new(Fp::from_u64(v[2]).square(), Fp::from_u64(v[3]).square()),
                Fp2::new(Fp::from_u64(v[4]).square(), Fp::from_u64(v[5]).square()),
            )
        })
    }

    fn arb_fp12() -> impl Strategy<Value = Fp12> {
        (arb_fp6(), arb_fp6()).prop_map(|(a, b)| Fp12::new(a, b))
    }

    #[test]
    fn w_squared_is_v() {
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        assert_eq!(Fp12::w().square(), Fp12::from_fp6(v));
    }

    #[test]
    fn conjugate_fixes_fp6_subfield() {
        let a = Fp12::from_fp6(Fp6::from_u64(42));
        assert_eq!(a.conjugate(), a);
    }

    #[test]
    fn conjugate_is_multiplicative() {
        let a = Fp12::new(Fp6::from_u64(3), Fp6::from_u64(7));
        let b = Fp12::new(Fp6::from_u64(11), Fp6::from_u64(13));
        assert_eq!(a.mul(&b).conjugate(), a.conjugate().mul(&b.conjugate()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn fp12_inverse_inverts(a in arb_fp12()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.inverse().unwrap()), Fp12::one());
        }

        #[test]
        fn fp12_square_matches_mul(a in arb_fp12()) {
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn fp12_mul_associates(a in arb_fp12(), b in arb_fp12(), c in arb_fp12()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }
    }
}
