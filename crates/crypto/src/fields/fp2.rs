//! Quadratic extension `Fp2 = Fp[u] / (u^2 + 1)`.

use super::{Field, Fp};
use crate::nat::Nat;
use crate::params::curve_params;
use std::sync::OnceLock;

/// An element `c0 + c1·u` of `Fp2`, where `u^2 = -1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Fp2 {
    /// Coefficient of `1`.
    pub c0: Fp,
    /// Coefficient of `u`.
    pub c1: Fp,
}

impl Fp2 {
    /// Constructs `c0 + c1·u`.
    pub fn new(c0: Fp, c1: Fp) -> Self {
        Fp2 { c0, c1 }
    }

    /// Embeds an `Fp` element.
    pub fn from_fp(c0: Fp) -> Self {
        Fp2 { c0, c1: Fp::zero() }
    }

    /// The distinguished non-residue `ξ = 1 + u` used to build `Fp6`.
    pub fn xi() -> Self {
        Fp2::new(Fp::one(), Fp::one())
    }

    /// Multiplies by `ξ = 1 + u`: `(c0 - c1) + (c0 + c1)·u`.
    pub fn mul_by_xi(&self) -> Self {
        Fp2 {
            c0: self.c0.sub(&self.c1),
            c1: self.c0.add(&self.c1),
        }
    }

    /// Complex conjugate `c0 - c1·u` (this is the Frobenius map `x -> x^p`).
    pub fn conjugate(&self) -> Self {
        Fp2 {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// Scales both coefficients by an `Fp` element.
    pub fn scale(&self, k: &Fp) -> Self {
        Fp2 {
            c0: self.c0.mul(k),
            c1: self.c1.mul(k),
        }
    }

    /// Norm `c0^2 + c1^2 ∈ Fp` (since `u^2 = -1`).
    pub fn norm(&self) -> Fp {
        self.c0.square().add(&self.c1.square())
    }

    /// Square root via Tonelli–Shanks over `Fp2` (`q = p^2`, `q ≡ 1 mod 4`).
    ///
    /// Returns `None` if `self` is a non-residue.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        let ts = tonelli_shanks_params();
        // Check residuosity: self^((q-1)/2) must be 1.
        if self.pow_nat(&ts.q_minus_1_half) != Fp2::one() {
            return None;
        }
        // Tonelli–Shanks.
        let mut m = ts.s;
        let mut c = ts.z_t; // nonresidue^t
        let mut t = self.pow_nat(&ts.t_exp);
        let mut res = self.pow_nat(&ts.t_plus_1_half);
        while t != Fp2::one() {
            // Find least i in (0, m) with t^(2^i) = 1.
            let mut i = 0u32;
            let mut t2 = t;
            while t2 != Fp2::one() {
                t2 = t2.square();
                i += 1;
                if i == m {
                    return None; // not a residue (defensive; filtered above)
                }
            }
            let mut b = c;
            for _ in 0..(m - i - 1) {
                b = b.square();
            }
            m = i;
            c = b.square();
            t = t.mul(&c);
            res = res.mul(&b);
        }
        debug_assert_eq!(res.square(), *self);
        Some(res)
    }
}

struct TsParams {
    /// `(q - 1) / 2` with `q = p^2`.
    q_minus_1_half: Nat,
    /// `s` where `q - 1 = 2^s * t`, `t` odd.
    s: u32,
    /// `t` (odd part of `q - 1`).
    t_exp: Nat,
    /// `(t + 1) / 2`.
    t_plus_1_half: Nat,
    /// `n^t` for a fixed quadratic non-residue `n` of `Fp2`.
    z_t: Fp2,
}

fn tonelli_shanks_params() -> &'static TsParams {
    static TS: OnceLock<TsParams> = OnceLock::new();
    TS.get_or_init(|| {
        let q = curve_params().p_squared.clone();
        let q_minus_1 = q.sub(&Nat::one());
        let q_minus_1_half = q_minus_1.shr1();
        let mut t = q_minus_1.clone();
        let mut s = 0u32;
        while !t.bit(0) {
            t = t.shr1();
            s += 1;
        }
        let t_plus_1_half = t.add(&Nat::one()).shr1();
        // Find a quadratic non-residue by scanning small elements c + u.
        let mut z_t = None;
        for c in 0u64..64 {
            let cand = Fp2::new(Fp::from_u64(c), Fp::one());
            if cand.pow_nat(&q_minus_1_half) != Fp2::one() {
                z_t = Some(cand.pow_nat(&t));
                break;
            }
        }
        TsParams {
            q_minus_1_half,
            s,
            t_exp: t,
            t_plus_1_half,
            z_t: z_t.expect("no quadratic non-residue found among small elements"),
        }
    })
}

impl Field for Fp2 {
    fn zero() -> Self {
        Fp2::new(Fp::zero(), Fp::zero())
    }
    fn one() -> Self {
        Fp2::new(Fp::one(), Fp::zero())
    }
    fn add(&self, o: &Self) -> Self {
        Fp2::new(self.c0.add(&o.c0), self.c1.add(&o.c1))
    }
    fn sub(&self, o: &Self) -> Self {
        Fp2::new(self.c0.sub(&o.c0), self.c1.sub(&o.c1))
    }
    fn neg(&self) -> Self {
        Fp2::new(self.c0.neg(), self.c1.neg())
    }
    fn mul(&self, o: &Self) -> Self {
        // Karatsuba: (a0 + a1 u)(b0 + b1 u) with u^2 = -1.
        let v0 = self.c0.mul(&o.c0);
        let v1 = self.c1.mul(&o.c1);
        let s = self.c0.add(&self.c1);
        let t = o.c0.add(&o.c1);
        Fp2 {
            c0: v0.sub(&v1),
            c1: s.mul(&t).sub(&v0).sub(&v1),
        }
    }
    fn square(&self) -> Self {
        // (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u.
        let p = self.c0.add(&self.c1);
        let m = self.c0.sub(&self.c1);
        let d = self.c0.mul(&self.c1);
        Fp2 {
            c0: p.mul(&m),
            c1: d.double(),
        }
    }
    fn inverse(&self) -> Option<Self> {
        let n = self.norm();
        let ninv = n.inverse()?;
        Some(Fp2 {
            c0: self.c0.mul(&ninv),
            c1: self.c1.mul(&ninv).neg(),
        })
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
    fn from_u64(v: u64) -> Self {
        Fp2::from_fp(Fp::from_u64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fp2() -> impl Strategy<Value = Fp2> {
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c, d)| {
            let c0 = Fp::from_u64(a).mul(&Fp::from_u64(b).add(&Fp::from_u64(1)));
            let c1 = Fp::from_u64(c).mul(&Fp::from_u64(d).add(&Fp::from_u64(1)));
            Fp2::new(c0, c1)
        })
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::zero(), Fp::one());
        assert_eq!(u.square(), Fp2::one().neg());
    }

    #[test]
    fn xi_is_nonresidue_cube_and_square() {
        // ξ = 1+u must be neither a square nor a cube in Fp2 for the tower
        // to be a field; verify it is at least not a square.
        assert!(Fp2::xi().sqrt().is_none());
    }

    #[test]
    fn mul_by_xi_matches_generic_mul() {
        let a = Fp2::new(Fp::from_u64(123), Fp::from_u64(456));
        assert_eq!(a.mul_by_xi(), a.mul(&Fp2::xi()));
    }

    #[test]
    fn sqrt_roundtrip() {
        let a = Fp2::new(Fp::from_u64(7), Fp::from_u64(13));
        let sq = a.square();
        let root = sq.sqrt().expect("square has a root");
        assert!(root == a || root == a.neg());
    }

    #[test]
    fn conjugate_is_involution_and_multiplicative() {
        let a = Fp2::new(Fp::from_u64(3), Fp::from_u64(5));
        let b = Fp2::new(Fp::from_u64(11), Fp::from_u64(17));
        assert_eq!(a.conjugate().conjugate(), a);
        assert_eq!(a.mul(&b).conjugate(), a.conjugate().mul(&b.conjugate()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fp2_inverse_inverts(a in arb_fp2()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.inverse().unwrap()), Fp2::one());
        }

        #[test]
        fn fp2_square_matches_mul(a in arb_fp2()) {
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn fp2_mul_associates(a in arb_fp2(), b in arb_fp2(), c in arb_fp2()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn fp2_sqrt_of_square_exists(a in arb_fp2()) {
            let sq = a.square();
            let r = sq.sqrt().expect("squares have roots");
            prop_assert!(r == a || r == a.neg());
        }
    }
}
