//! Field towers for BLS12-381: `Fp`, `Fr`, `Fp2`, `Fp6`, `Fp12`.
//!
//! The tower follows the standard construction:
//!
//! * `Fp2  = Fp[u]  / (u^2 + 1)`
//! * `Fp6  = Fp2[v] / (v^3 - ξ)` with `ξ = 1 + u`
//! * `Fp12 = Fp6[w] / (w^2 - v)`

pub mod mont;

mod base;
mod fp12;
mod fp2;
mod fp6;

pub use base::{Fp, Fr};
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;

/// Common interface for all field types in the tower, used by the generic
/// curve arithmetic and the pairing.
pub trait Field: Copy + Clone + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add(&self, other: &Self) -> Self;
    /// `self - other`.
    fn sub(&self, other: &Self) -> Self;
    /// `-self`.
    fn neg(&self) -> Self;
    /// `self * other`.
    fn mul(&self, other: &Self) -> Self;
    /// `self^2`.
    fn square(&self) -> Self {
        self.mul(self)
    }
    /// `2 * self`.
    fn double(&self) -> Self {
        self.add(self)
    }
    /// Multiplicative inverse, `None` for zero.
    fn inverse(&self) -> Option<Self>;
    /// True for the additive identity.
    fn is_zero(&self) -> bool;
    /// Embeds a small integer.
    fn from_u64(v: u64) -> Self;

    /// Exponentiation by little-endian 64-bit limbs.
    fn pow_limbs(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for &limb in exp.iter().rev() {
            for bit in (0..64).rev() {
                if started {
                    res = res.square();
                }
                if (limb >> bit) & 1 == 1 {
                    if started {
                        res = res.mul(self);
                    } else {
                        res = *self;
                        started = true;
                    }
                }
            }
        }
        if started {
            res
        } else {
            Self::one()
        }
    }

    /// Exponentiation by a [`crate::nat::Nat`].
    fn pow_nat(&self, exp: &crate::nat::Nat) -> Self {
        self.pow_limbs(exp.limbs())
    }
}
