//! BLS12-381 curve parameters, derived from the single curve parameter
//! `x = -z`, `z = 0xd201_0000_0001_0000`.
//!
//! For a BLS12 curve:
//!
//! * subgroup order   `r = x^4 - x^2 + 1 = z^4 - z^2 + 1`
//! * base field prime `p = (x-1)^2 * r / 3 + x = (z+1)^2 * r / 3 - z`
//! * trace of Frobenius `t = x + 1 = 1 - z` (negative)
//! * `#E(Fp) = p + 1 - t = p + z`, so the G1 cofactor is
//!   `h1 = (p + z) / r = (z+1)^2 / 3`
//! * G2 lives on a sextic twist `E'/Fp2`; its order is derived from the CM
//!   relation `t2^2 - 4p^2 = -3 f2^2` by picking the unique twist trace whose
//!   group order is divisible by `r` (see `curve_params`)
//!
//! Everything below is computed once with exact integer arithmetic and
//! sanity-checked (bit lengths, congruences, exact divisions). The derived
//! values are additionally compared against the standard published constants
//! in tests and against the `blst` oracle.

use crate::fields::mont::MontParams;
use crate::nat::Nat;
use std::sync::OnceLock;

/// `z = -x`, the (negated) BLS12-381 curve parameter.
pub const Z: u64 = 0xd201_0000_0001_0000;

/// All integer-level curve parameters.
#[derive(Debug)]
pub struct CurveParams {
    /// Base field prime `p` (381 bits).
    pub p: Nat,
    /// Subgroup order `r` (255 bits).
    pub r: Nat,
    /// G1 cofactor `h1 = (z+1)^2 / 3`.
    pub h1: Nat,
    /// G2 cofactor: sextic-twist order divided by `r`.
    pub h2: Nat,
    /// Hard part of the final exponentiation: `3 (p^4 - p^2 + 1) / r`
    /// (the blst-compatible Fuentes-Castañeda-style multiple).
    pub final_exp_hard: Nat,
    /// `p^2`, the Frobenius-squared exponent used in the easy part.
    pub p_squared: Nat,
    /// `r` as 4 little-endian limbs (for scalar-field exponentiation).
    pub r_limbs: [u64; 4],
}

/// Returns the lazily derived curve parameters.
pub fn curve_params() -> &'static CurveParams {
    static PARAMS: OnceLock<CurveParams> = OnceLock::new();
    PARAMS.get_or_init(|| {
        let z = Nat::from_u64(Z);
        let z2 = z.square();
        let z4 = z2.square();
        let r = z4.sub(&z2).add(&Nat::one());
        let z_plus_1 = z.add(&Nat::one());
        let three = Nat::from_u64(3);
        let p = z_plus_1.square().mul(&r).div_exact(&three).sub(&z);
        assert_eq!(p.bit_len(), 381, "derived p has wrong bit length");
        assert_eq!(r.bit_len(), 255, "derived r has wrong bit length");
        assert_eq!(p.low_u64() & 3, 3, "p must be 3 mod 4 for simple sqrt");

        let h1 = z_plus_1.square().div_exact(&three);
        // G2 lives on a *sextic twist* E'/Fp2, whose order is p^2 + 1 - t'
        // for a twist trace t'. With t the trace of E/Fp (t = 1 - z, i.e.
        // negative with magnitude z - 1) and t2 = t^2 - 2p the trace of
        // E/Fp2 (also negative here), the CM relation t2^2 - 4p^2 = -3*f2^2
        // determines f2, and the two sextic twists have traces
        // (±3·f2 ± t2) / 2. We enumerate the sign choices and keep the
        // unique order divisible by r.
        let t_mag = z.sub(&Nat::one()); // |t| = z - 1
        let two_p = p.add(&p);
        assert!(two_p > t_mag.square());
        let t2_mag = two_p.sub(&t_mag.square()); // |t2| = 2p - (z-1)^2
        let f2_sq = p.square().shl(2).sub(&t2_mag.square()).div_exact(&three);
        let f2 = f2_sq.isqrt();
        assert_eq!(f2.square(), f2_sq, "4p^2 - t2^2 must be 3 * square");
        let q1 = p.square().add(&Nat::one());
        let three_f2 = f2.mul(&three);
        // t2 is negative, so 3f2 + t2 = 3f2 - |t2| and 3f2 - t2 = 3f2 + |t2|.
        let mut candidates = Vec::new();
        let diff = if three_f2 >= t2_mag {
            three_f2.sub(&t2_mag)
        } else {
            t2_mag.sub(&three_f2)
        };
        let sum = three_f2.add(&t2_mag);
        for mag in [diff, sum] {
            if mag.bit(0) {
                continue; // twist trace must be an integer
            }
            let half = mag.shr1();
            candidates.push(q1.sub(&half));
            candidates.push(q1.add(&half));
        }
        let orders: Vec<&Nat> = candidates.iter().filter(|n| n.rem(&r).is_zero()).collect();
        assert_eq!(
            orders.len(),
            1,
            "exactly one sextic twist order must be divisible by r"
        );
        let h2 = orders[0].div_exact(&r);

        let p2 = p.square();
        let p4 = p2.square();
        // Hard-part exponent 3 * (p^4 - p^2 + 1) / r: the factor 3 (coprime
        // to r) matches the Fuentes-Castañeda-style exponent used by
        // production implementations (blst, relic), making our pairing
        // outputs bit-identical to blst's.
        let final_exp_hard = p4
            .sub(&p2)
            .add(&Nat::one())
            .div_exact(&r)
            .mul(&Nat::from_u64(3));

        let r_limbs: [u64; 4] = r.to_limbs(4).try_into().unwrap();
        CurveParams {
            p,
            r,
            h1,
            h2,
            final_exp_hard,
            p_squared: p2,
            r_limbs,
        }
    })
}

/// Montgomery parameters for the base field `Fp` (6 limbs).
pub fn fp_params() -> &'static MontParams<6> {
    static P: OnceLock<MontParams<6>> = OnceLock::new();
    P.get_or_init(|| MontParams::derive(&curve_params().p))
}

/// Montgomery parameters for the scalar field `Fr` (4 limbs).
pub fn fr_params() -> &'static MontParams<4> {
    static P: OnceLock<MontParams<4>> = OnceLock::new();
    P.get_or_init(|| MontParams::derive(&curve_params().r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(n: &Nat) -> String {
        n.to_be_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn derived_p_matches_published_constant() {
        assert_eq!(
            hex(&curve_params().p),
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624\
             1eabfffeb153ffffb9feffffffffaaab"
        );
    }

    #[test]
    fn derived_r_matches_published_constant() {
        assert_eq!(
            hex(&curve_params().r),
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
        );
    }

    #[test]
    fn g1_cofactor_matches_published_constant() {
        assert_eq!(hex(&curve_params().h1), "396c8c005555e1568c00aaab0000aaab");
    }

    #[test]
    fn group_orders_consistent() {
        let cp = curve_params();
        // #E(Fp) = h1 * r = p + z
        assert_eq!(cp.h1.mul(&cp.r), cp.p.add(&Nat::from_u64(Z)));
        // (p^4 - p^2 + 1) is divisible by r (checked by div_exact in derive,
        // re-verified here via reconstruction).
        let p2 = cp.p.square();
        let p4 = p2.square();
        assert_eq!(
            cp.final_exp_hard.mul(&cp.r),
            p4.sub(&p2).add(&Nat::one()).mul(&Nat::from_u64(3))
        );
    }

    #[test]
    fn fr_params_sane() {
        let fr = fr_params();
        assert!(!fr.sqrt_3mod4, "r = 1 mod 4 for BLS12-381");
        assert_eq!(fr.modulus_nat, curve_params().r);
    }
}
