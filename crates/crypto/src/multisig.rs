//! Indivisible multi-signatures with multiplicities.
//!
//! The Iniva protocol relies on two properties of its signature scheme,
//! abstracted here as the [`VoteScheme`] trait:
//!
//! * **Indivisibility** — given an aggregate, no party can recover or remove
//!   a constituent signature (Boneh et al.'s k-element aggregate extraction
//!   assumption; proven equivalent to Diffie–Hellman for BLS by
//!   Coron–Naccache). The API never exposes decomposition.
//! * **Multiplicity** — the same signature may be folded in more than once
//!   (`agg(σ1^2, σ2^2, σi^3)`), and verification checks the exact
//!   multiplicity vector. Iniva uses multiplicities to prove *how* a vote
//!   was collected (tree aggregation vs 2ND-CHANCE fallback).

use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identity of a committee member (index into the committee; roles
/// and tree positions are reshuffled every view, identities are not).
pub type SignerId = u32;

/// A multiset of signers: who is inside an aggregate, and how many times.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Multiplicities(BTreeMap<SignerId, u64>);

impl Multiplicities {
    /// The empty multiset.
    pub fn new() -> Self {
        Multiplicities(BTreeMap::new())
    }

    /// A singleton multiset `{signer: 1}`.
    pub fn singleton(signer: SignerId) -> Self {
        let mut m = BTreeMap::new();
        m.insert(signer, 1);
        Multiplicities(m)
    }

    /// Adds `count` occurrences of `signer`.
    pub fn add(&mut self, signer: SignerId, count: u64) {
        if count > 0 {
            *self.0.entry(signer).or_insert(0) += count;
        }
    }

    /// Pointwise sum of two multisets.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (&s, &c) in &other.0 {
            out.add(s, c);
        }
        out
    }

    /// Scales every multiplicity by `k`.
    pub fn scale(&self, k: u64) -> Self {
        if k == 0 {
            return Multiplicities::new();
        }
        Multiplicities(self.0.iter().map(|(&s, &c)| (s, c * k)).collect())
    }

    /// Multiplicity of `signer` (0 if absent).
    pub fn get(&self, signer: SignerId) -> u64 {
        self.0.get(&signer).copied().unwrap_or(0)
    }

    /// True if `signer` appears at least once.
    pub fn contains(&self, signer: SignerId) -> bool {
        self.get(signer) > 0
    }

    /// Number of distinct signers.
    pub fn distinct(&self) -> usize {
        self.0.len()
    }

    /// Sum of all multiplicities.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }

    /// Iterates `(signer, multiplicity)` in signer order.
    pub fn iter(&self) -> impl Iterator<Item = (SignerId, u64)> + '_ {
        self.0.iter().map(|(&s, &c)| (s, c))
    }

    /// The distinct signers, in order.
    pub fn signers(&self) -> impl Iterator<Item = SignerId> + '_ {
        self.0.keys().copied()
    }

    /// True when no signer is present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<(SignerId, u64)> for Multiplicities {
    fn from_iter<T: IntoIterator<Item = (SignerId, u64)>>(iter: T) -> Self {
        let mut m = Multiplicities::new();
        for (s, c) in iter {
            m.add(s, c);
        }
        m
    }
}

impl WireEncode for Multiplicities {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0.len() as u32);
        for (&signer, &count) in &self.0 {
            enc.put_u32(signer).put_u64(count);
        }
    }
}

impl WireDecode for Multiplicities {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let n = dec.get_u32()?;
        let mut m = Multiplicities::new();
        let mut prev: Option<SignerId> = None;
        for _ in 0..n {
            let signer = dec.get_u32()?;
            let count = dec.get_u64()?;
            // The encoder emits strictly ascending signers with nonzero
            // counts; reject anything else so decode(encode(m)) == m is the
            // *only* accepted byte representation (canonical form — callers
            // compare aggregates by their encodings).
            if count == 0 || prev.is_some_and(|p| signer <= p) {
                return Err(DecodeError::Malformed {
                    context:
                        "non-canonical Multiplicities entry (unsorted, duplicate or zero count)",
                });
            }
            prev = Some(signer);
            m.add(signer, count);
        }
        Ok(m)
    }
}

impl fmt::Display for Multiplicities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}^{c}")?;
        }
        write!(f, "}}")
    }
}

/// An indivisible multi-signature scheme with multiplicity-aware
/// aggregation, as assumed by the Iniva protocol (Section III of the paper).
///
/// A scheme value holds the whole committee's key material — a *simulation
/// keyring*. In a deployment each node would own only its secret; the
/// protocol logic in the `iniva` crate only ever signs with the local node's
/// id, so the abstraction does not leak authority into the protocol.
pub trait VoteScheme {
    /// An aggregate signature (also represents a single vote: an aggregate
    /// with one signer of multiplicity 1).
    type Aggregate: Clone + fmt::Debug;

    /// Signs `msg` as `signer`, producing a multiplicity-1 aggregate.
    fn sign(&self, signer: SignerId, msg: &[u8]) -> Self::Aggregate;

    /// Aggregates two aggregates (multiplicities add; indivisible result).
    fn combine(&self, a: &Self::Aggregate, b: &Self::Aggregate) -> Self::Aggregate;

    /// Folds an aggregate in `k` times (`k >= 1`).
    fn scale(&self, a: &Self::Aggregate, k: u64) -> Self::Aggregate;

    /// Verifies the aggregate against `msg` and its claimed multiplicities.
    fn verify(&self, msg: &[u8], agg: &Self::Aggregate) -> bool;

    /// The claimed signer multiset of an aggregate.
    fn multiplicities<'a>(&self, agg: &'a Self::Aggregate) -> &'a Multiplicities;

    /// Committee size.
    fn committee_size(&self) -> usize;
}

/// A [`VoteScheme`] that can run over a real wire.
///
/// The live TCP runtime (`iniva-transport`), the write-ahead log
/// (`iniva-storage`) and the example binaries are generic over this bound
/// instead of hard-pinning a scheme: the aggregate type carries the
/// [`wire`](iniva_net::wire) codec impls (declared as supertrait bounds,
/// so `S: WireScheme` elaborates them at every use site), the keyring is
/// rebuildable on any process from `(n, seed)` common knowledge, and
/// everything is shareable across transport threads. Both the calibrated
/// [`SimScheme`](crate::sim_scheme::SimScheme) stand-in and the real
/// pairing-crypto [`BlsScheme`](crate::bls::BlsScheme) implement it, which
/// is what lets one cluster harness ship either scheme's aggregates as
/// actual frame bytes.
///
/// (This trait would naturally sit next to the codec in `iniva_net::wire`,
/// but `iniva-net` cannot name [`VoteScheme`] without a dependency cycle —
/// the codec crate is below the crypto crate — so it lives here, beside
/// the trait it refines.)
pub trait WireScheme:
    VoteScheme<Aggregate: WireEncode + WireDecode + Send + 'static> + Send + Sync + 'static
{
    /// CLI / log name of the scheme (`"sim"`, `"bls"`).
    const NAME: &'static str;

    /// True when the scheme's signing/verification burns real CPU inside
    /// the protocol handlers (pairings) rather than relying on the
    /// calibrated cost model. Launchers use this to retune timers and
    /// zero the modeled cost (`InivaConfig::tune_for_real_crypto` in the
    /// `iniva` crate) — keyed on the scheme definition, not on string
    /// comparisons at call sites, so a future real-crypto scheme cannot
    /// silently run with sim-calibrated timers.
    const REAL_CRYPTO: bool = false;

    /// Rebuilds the committee keyring every replica derives from common
    /// knowledge: committee size and the shared seed.
    fn new_committee(n: usize, seed: &[u8]) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_merge_and_scale() {
        let a = Multiplicities::from_iter([(1, 2), (2, 2)]);
        let b = Multiplicities::from_iter([(2, 1), (3, 4)]);
        let m = a.merge(&b);
        assert_eq!(m.get(1), 2);
        assert_eq!(m.get(2), 3);
        assert_eq!(m.get(3), 4);
        assert_eq!(m.total(), 9);
        assert_eq!(m.distinct(), 3);
        let s = a.scale(3);
        assert_eq!(s.get(1), 6);
        assert_eq!(s.scale(0).total(), 0);
    }

    #[test]
    fn zero_counts_not_stored() {
        let mut m = Multiplicities::new();
        m.add(5, 0);
        assert!(m.is_empty());
        assert!(!m.contains(5));
    }

    #[test]
    fn display_is_compact() {
        let m = Multiplicities::from_iter([(1, 2), (7, 3)]);
        assert_eq!(m.to_string(), "{1^2, 7^3}");
    }

    #[test]
    fn wire_roundtrip_including_empty() {
        use iniva_net::wire::Codec;
        for m in [
            Multiplicities::new(),
            Multiplicities::singleton(3),
            Multiplicities::from_iter([(0, 1), (4, 2), (90, 7)]),
        ] {
            assert_eq!(Multiplicities::from_frame(m.to_frame()).unwrap(), m);
        }
    }

    #[test]
    fn wire_rejects_non_canonical_entries() {
        use iniva_net::wire::Codec;
        // Duplicate signer.
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_u32(5).put_u64(1);
        enc.put_u32(5).put_u64(2);
        assert!(matches!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
        // Zero count.
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(5).put_u64(0);
        assert!(matches!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
        // Unsorted entries: would decode to a value whose re-encoding
        // differs from the input bytes, breaking canonical-form equality.
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_u32(7).put_u64(1);
        enc.put_u32(5).put_u64(1);
        assert!(matches!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
        // Truncated entry list.
        let mut enc = Encoder::new();
        enc.put_u32(3);
        enc.put_u32(5).put_u64(1);
        assert_eq!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::UnexpectedEnd)
        );
    }
}
