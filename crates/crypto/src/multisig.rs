//! Indivisible multi-signatures with multiplicities.
//!
//! The Iniva protocol relies on two properties of its signature scheme,
//! abstracted here as the [`VoteScheme`] trait:
//!
//! * **Indivisibility** — given an aggregate, no party can recover or remove
//!   a constituent signature (Boneh et al.'s k-element aggregate extraction
//!   assumption; proven equivalent to Diffie–Hellman for BLS by
//!   Coron–Naccache). The API never exposes decomposition.
//! * **Multiplicity** — the same signature may be folded in more than once
//!   (`agg(σ1^2, σ2^2, σi^3)`), and verification checks the exact
//!   multiplicity vector. Iniva uses multiplicities to prove *how* a vote
//!   was collected (tree aggregation vs 2ND-CHANCE fallback).

use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identity of a committee member (index into the committee; roles
/// and tree positions are reshuffled every view, identities are not).
pub type SignerId = u32;

/// Largest multiplicity a decoded wire aggregate may claim per signer.
///
/// Honest multiplicities are tiny — tree aggregation folds a child in
/// twice and the internal node's own share `#children + 1` times (paper
/// Eq. 1), so anything beyond committee size is already implausible. The
/// cap exists for hostility, not plausibility: a count near `u64::MAX`
/// would make a later `merge`/`scale` wrap (release) or panic (debug)
/// inside an unsuspecting combine far from the decode site. `u32::MAX`
/// leaves orders of magnitude of headroom over any honest value while
/// keeping every in-memory sum of distinct-signer counts far from
/// overflow.
pub const MAX_MULTIPLICITY: u64 = u32::MAX as u64;

/// A multiset of signers: who is inside an aggregate, and how many times.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Multiplicities(BTreeMap<SignerId, u64>);

impl Multiplicities {
    /// The empty multiset.
    pub fn new() -> Self {
        Multiplicities(BTreeMap::new())
    }

    /// A singleton multiset `{signer: 1}`.
    pub fn singleton(signer: SignerId) -> Self {
        let mut m = BTreeMap::new();
        m.insert(signer, 1);
        Multiplicities(m)
    }

    /// Adds `count` occurrences of `signer`. Saturating: combining
    /// near-`u64::MAX` counts (reachable only through hostile inputs —
    /// decode already caps each entry at [`MAX_MULTIPLICITY`]) pins at
    /// `u64::MAX` instead of wrapping or panicking.
    pub fn add(&mut self, signer: SignerId, count: u64) {
        if count > 0 {
            let entry = self.0.entry(signer).or_insert(0);
            *entry = entry.saturating_add(count);
        }
    }

    /// Pointwise sum of two multisets (saturating per entry).
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (&s, &c) in &other.0 {
            out.add(s, c);
        }
        out
    }

    /// Scales every multiplicity by `k` (saturating per entry).
    pub fn scale(&self, k: u64) -> Self {
        if k == 0 {
            return Multiplicities::new();
        }
        Multiplicities(
            self.0
                .iter()
                .map(|(&s, &c)| (s, c.saturating_mul(k)))
                .collect(),
        )
    }

    /// Multiplicity of `signer` (0 if absent).
    pub fn get(&self, signer: SignerId) -> u64 {
        self.0.get(&signer).copied().unwrap_or(0)
    }

    /// True if `signer` appears at least once.
    pub fn contains(&self, signer: SignerId) -> bool {
        self.get(signer) > 0
    }

    /// Number of distinct signers.
    pub fn distinct(&self) -> usize {
        self.0.len()
    }

    /// Sum of all multiplicities (saturating — a hostile multiset at the
    /// per-entry cap must not overflow the sum either).
    pub fn total(&self) -> u64 {
        self.0.values().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Iterates `(signer, multiplicity)` in signer order.
    pub fn iter(&self) -> impl Iterator<Item = (SignerId, u64)> + '_ {
        self.0.iter().map(|(&s, &c)| (s, c))
    }

    /// The distinct signers, in order.
    pub fn signers(&self) -> impl Iterator<Item = SignerId> + '_ {
        self.0.keys().copied()
    }

    /// True when no signer is present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<(SignerId, u64)> for Multiplicities {
    fn from_iter<T: IntoIterator<Item = (SignerId, u64)>>(iter: T) -> Self {
        let mut m = Multiplicities::new();
        for (s, c) in iter {
            m.add(s, c);
        }
        m
    }
}

impl WireEncode for Multiplicities {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0.len() as u32);
        for (&signer, &count) in &self.0 {
            enc.put_u32(signer).put_u64(count);
        }
    }
}

impl WireDecode for Multiplicities {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let n = dec.get_u32()?;
        let mut m = Multiplicities::new();
        let mut prev: Option<SignerId> = None;
        for _ in 0..n {
            let signer = dec.get_u32()?;
            let count = dec.get_u64()?;
            // The encoder emits strictly ascending signers with nonzero
            // counts; reject anything else so decode(encode(m)) == m is the
            // *only* accepted byte representation (canonical form — callers
            // compare aggregates by their encodings).
            if count == 0 || prev.is_some_and(|p| signer <= p) {
                return Err(DecodeError::Malformed {
                    context:
                        "non-canonical Multiplicities entry (unsorted, duplicate or zero count)",
                });
            }
            // Cap hostile counts at the wire boundary: a value near
            // `u64::MAX` is never honest and exists only to overflow a
            // later combine (`add`/`merge`/`scale` saturate as defense in
            // depth, but rejecting here keeps poisoned multisets out of
            // protocol state entirely).
            if count > MAX_MULTIPLICITY {
                return Err(DecodeError::Malformed {
                    context: "Multiplicities count exceeds MAX_MULTIPLICITY",
                });
            }
            prev = Some(signer);
            m.add(signer, count);
        }
        Ok(m)
    }
}

impl fmt::Display for Multiplicities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}^{c}")?;
        }
        write!(f, "}}")
    }
}

/// The result of verifying a batch of aggregates in one shot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every aggregate in every group verified against its group message.
    AllValid,
    /// At least one aggregate failed; the culprits are listed as
    /// `(group_index, item_index)` pairs, ascending. Every aggregate *not*
    /// listed verified correctly — callers keep the survivors without
    /// re-verifying them.
    Invalid(Vec<(usize, usize)>),
}

impl BatchOutcome {
    /// True when nothing in the batch failed.
    pub fn all_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }

    /// The culprit list (empty when all valid).
    pub fn culprits(&self) -> &[(usize, usize)] {
        match self {
            BatchOutcome::AllValid => &[],
            BatchOutcome::Invalid(c) => c,
        }
    }
}

/// An indivisible multi-signature scheme with multiplicity-aware
/// aggregation, as assumed by the Iniva protocol (Section III of the paper).
///
/// A scheme value holds the whole committee's key material — a *simulation
/// keyring*. In a deployment each node would own only its secret; the
/// protocol logic in the `iniva` crate only ever signs with the local node's
/// id, so the abstraction does not leak authority into the protocol.
pub trait VoteScheme {
    /// An aggregate signature (also represents a single vote: an aggregate
    /// with one signer of multiplicity 1).
    type Aggregate: Clone + fmt::Debug;

    /// Signs `msg` as `signer`, producing a multiplicity-1 aggregate.
    fn sign(&self, signer: SignerId, msg: &[u8]) -> Self::Aggregate;

    /// Aggregates two aggregates (multiplicities add; indivisible result).
    fn combine(&self, a: &Self::Aggregate, b: &Self::Aggregate) -> Self::Aggregate;

    /// Folds an aggregate in `k` times (`k >= 1`).
    fn scale(&self, a: &Self::Aggregate, k: u64) -> Self::Aggregate;

    /// Verifies the aggregate against `msg` and its claimed multiplicities.
    fn verify(&self, msg: &[u8], agg: &Self::Aggregate) -> bool;

    /// Verifies many aggregates at once, grouped by message: `msg_groups`
    /// pairs each message with every aggregate claimed to sign it.
    ///
    /// Semantics are exactly "[`Self::verify`] per item": the outcome's
    /// culprit list names precisely the items per-item verification would
    /// reject. The default does run per item; schemes whose verification
    /// is pairing-based override it with a random-linear-combination
    /// multi-pairing (two Miller loops per batch instead of two per item,
    /// one shared final exponentiation) plus bisection to isolate culprits
    /// on failure — see `BlsScheme`.
    fn verify_batch(&self, msg_groups: &[(&[u8], &[Self::Aggregate])]) -> BatchOutcome {
        let mut bad = Vec::new();
        for (gi, (msg, aggs)) in msg_groups.iter().enumerate() {
            for (ai, agg) in aggs.iter().enumerate() {
                if !self.verify(msg, agg) {
                    bad.push((gi, ai));
                }
            }
        }
        if bad.is_empty() {
            BatchOutcome::AllValid
        } else {
            BatchOutcome::Invalid(bad)
        }
    }

    /// The claimed signer multiset of an aggregate.
    fn multiplicities<'a>(&self, agg: &'a Self::Aggregate) -> &'a Multiplicities;

    /// Committee size.
    fn committee_size(&self) -> usize;
}

/// A [`VoteScheme`] that can run over a real wire.
///
/// The live TCP runtime (`iniva-transport`), the write-ahead log
/// (`iniva-storage`) and the example binaries are generic over this bound
/// instead of hard-pinning a scheme: the aggregate type carries the
/// [`wire`](iniva_net::wire) codec impls (declared as supertrait bounds,
/// so `S: WireScheme` elaborates them at every use site), the keyring is
/// rebuildable on any process from `(n, seed)` common knowledge, and
/// everything is shareable across transport threads. Both the calibrated
/// [`SimScheme`](crate::sim_scheme::SimScheme) stand-in and the real
/// pairing-crypto [`BlsScheme`](crate::bls::BlsScheme) implement it, which
/// is what lets one cluster harness ship either scheme's aggregates as
/// actual frame bytes.
///
/// (This trait would naturally sit next to the codec in `iniva_net::wire`,
/// but `iniva-net` cannot name [`VoteScheme`] without a dependency cycle —
/// the codec crate is below the crypto crate — so it lives here, beside
/// the trait it refines.)
pub trait WireScheme:
    VoteScheme<Aggregate: WireEncode + WireDecode + Send + 'static> + Send + Sync + 'static
{
    /// CLI / log name of the scheme (`"sim"`, `"bls"`).
    const NAME: &'static str;

    /// True when the scheme's signing/verification burns real CPU inside
    /// the protocol handlers (pairings) rather than relying on the
    /// calibrated cost model. Launchers use this to retune timers and
    /// zero the modeled cost (`InivaConfig::tune_for_real_crypto` in the
    /// `iniva` crate) — keyed on the scheme definition, not on string
    /// comparisons at call sites, so a future real-crypto scheme cannot
    /// silently run with sim-calibrated timers.
    const REAL_CRYPTO: bool = false;

    /// Rebuilds the committee keyring every replica derives from common
    /// knowledge: committee size and the shared seed.
    fn new_committee(n: usize, seed: &[u8]) -> Self;

    /// Mirrors the scheme's cumulative verification stats into a metrics
    /// registry (no-op by default; the BLS scheme exports its
    /// multi-pairing probe counter). Harnesses call this at dump time, so
    /// it must be idempotent — store, don't add.
    fn export_observability(&self, _registry: &iniva_obs::Registry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_merge_and_scale() {
        let a = Multiplicities::from_iter([(1, 2), (2, 2)]);
        let b = Multiplicities::from_iter([(2, 1), (3, 4)]);
        let m = a.merge(&b);
        assert_eq!(m.get(1), 2);
        assert_eq!(m.get(2), 3);
        assert_eq!(m.get(3), 4);
        assert_eq!(m.total(), 9);
        assert_eq!(m.distinct(), 3);
        let s = a.scale(3);
        assert_eq!(s.get(1), 6);
        assert_eq!(s.scale(0).total(), 0);
    }

    #[test]
    fn zero_counts_not_stored() {
        let mut m = Multiplicities::new();
        m.add(5, 0);
        assert!(m.is_empty());
        assert!(!m.contains(5));
    }

    #[test]
    fn display_is_compact() {
        let m = Multiplicities::from_iter([(1, 2), (7, 3)]);
        assert_eq!(m.to_string(), "{1^2, 7^3}");
    }

    #[test]
    fn wire_roundtrip_including_empty() {
        use iniva_net::wire::Codec;
        for m in [
            Multiplicities::new(),
            Multiplicities::singleton(3),
            Multiplicities::from_iter([(0, 1), (4, 2), (90, 7)]),
        ] {
            assert_eq!(Multiplicities::from_frame(m.to_frame()).unwrap(), m);
        }
    }

    #[test]
    fn hostile_counts_saturate_instead_of_wrapping() {
        // In-memory combines of extreme counts (defense in depth behind
        // the decode cap) must neither panic in debug nor wrap in release.
        let mut m = Multiplicities::new();
        m.add(1, u64::MAX - 1);
        m.add(1, 5);
        assert_eq!(m.get(1), u64::MAX);
        let a = Multiplicities::from_iter([(1, u64::MAX), (2, 3)]);
        let b = Multiplicities::from_iter([(1, u64::MAX), (2, u64::MAX - 1)]);
        let merged = a.merge(&b);
        assert_eq!(merged.get(1), u64::MAX);
        assert_eq!(merged.get(2), u64::MAX);
        assert_eq!(merged.total(), u64::MAX, "total saturates too");
        let scaled = Multiplicities::from_iter([(7, MAX_MULTIPLICITY)]).scale(u64::MAX);
        assert_eq!(scaled.get(7), u64::MAX);
    }

    #[test]
    fn wire_rejects_overflowing_count() {
        use iniva_net::wire::Codec;
        // A count just past the cap is Malformed; the cap itself decodes.
        for (count, ok) in [
            (MAX_MULTIPLICITY, true),
            (MAX_MULTIPLICITY + 1, false),
            (u64::MAX, false),
        ] {
            let mut enc = Encoder::new();
            enc.put_u32(1);
            enc.put_u32(3).put_u64(count);
            let got = Multiplicities::from_frame(enc.finish());
            if ok {
                assert_eq!(got.unwrap().get(3), count);
            } else {
                assert!(
                    matches!(got, Err(DecodeError::Malformed { .. })),
                    "count {count} must be rejected"
                );
            }
        }
    }

    #[test]
    fn default_verify_batch_agrees_with_per_item_verify() {
        use crate::sim_scheme::SimScheme;
        let s = SimScheme::new(4, b"batch-default");
        let m1: &[u8] = b"msg-1";
        let m2: &[u8] = b"msg-2";
        let good1 = s.sign(0, m1);
        let mut forged = s.sign(1, m1);
        forged.mults = Multiplicities::singleton(2);
        let good2 = s.sign(3, m2);
        let groups: Vec<(&[u8], &[_])> = vec![
            (m1, std::slice::from_ref(&good1)),
            (m1, std::slice::from_ref(&forged)),
            (m2, std::slice::from_ref(&good2)),
        ];
        assert_eq!(s.verify_batch(&groups), BatchOutcome::Invalid(vec![(1, 0)]));
        let all_good: Vec<(&[u8], &[_])> = vec![
            (m1, std::slice::from_ref(&good1)),
            (m2, std::slice::from_ref(&good2)),
        ];
        assert!(s.verify_batch(&all_good).all_valid());
    }

    #[test]
    fn wire_rejects_non_canonical_entries() {
        use iniva_net::wire::Codec;
        // Duplicate signer.
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_u32(5).put_u64(1);
        enc.put_u32(5).put_u64(2);
        assert!(matches!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
        // Zero count.
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(5).put_u64(0);
        assert!(matches!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
        // Unsorted entries: would decode to a value whose re-encoding
        // differs from the input bytes, breaking canonical-form equality.
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_u32(7).put_u64(1);
        enc.put_u32(5).put_u64(1);
        assert!(matches!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::Malformed { .. })
        ));
        // Truncated entry list.
        let mut enc = Encoder::new();
        enc.put_u32(3);
        enc.put_u32(5).put_u64(1);
        assert_eq!(
            Multiplicities::from_frame(enc.finish()),
            Err(DecodeError::UnexpectedEnd)
        );
    }
}
