//! SHA-256, implemented from the FIPS 180-4 specification.
//!
//! The round constants (fractional parts of the cube roots of the first 64
//! primes) and initial hash values (fractional parts of the square roots of
//! the first 8 primes) are *derived at first use* with exact integer
//! arithmetic rather than transcribed, and the whole construction is checked
//! against the well-known test vectors for `""` and `"abc"`.

use std::sync::OnceLock;

/// Streaming SHA-256 hasher.
///
/// # Examples
/// ```
/// use iniva_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

struct Constants {
    h0: [u32; 8],
    k: [u32; 64],
}

fn constants() -> &'static Constants {
    static CONSTS: OnceLock<Constants> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            k[i] = frac_root(p, 3);
        }
        let mut h0 = [0u32; 8];
        for (i, &p) in primes.iter().take(8).enumerate() {
            h0[i] = frac_root(p, 2);
        }
        Constants { h0, k }
    })
}

fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut cand = 2u64;
    while primes.len() < n {
        if primes.iter().all(|&p| !cand.is_multiple_of(p)) {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

/// First 32 bits of the fractional part of the `root`-th root of `p`,
/// computed exactly: `floor(p^(1/root) * 2^32) mod 2^32` via integer binary
/// search on `x^root <= p * 2^(32*root)`.
fn frac_root(p: u64, root: u32) -> u32 {
    // Search x in [0, 2^48): p < 64 so p^(1/3)*2^32 < 4*2^32 and
    // p^(1/2)*2^32 < 8*2^32; x fits easily in u64, x^3 fits in u128 for
    // x < 2^42. Use checked bounds.
    let target = (p as u128) << (32 * root);
    let mut lo = 0u128;
    let mut hi = 1u128 << 36;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let mut pow = 1u128;
        let mut overflow = false;
        for _ in 0..root {
            match pow.checked_mul(mid) {
                Some(v) => pow = v,
                None => {
                    overflow = true;
                    break;
                }
            }
        }
        if !overflow && pow <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: constants().h0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // NB: the 0x80 update mutated total_len; only bit_len matters now.
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = &constants().k;
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Examples
/// ```
/// let d = iniva_crypto::sha256::sha256(b"");
/// assert_eq!(d[..4], [0xe3, 0xb0, 0xc4, 0x42]);
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte slices.
pub fn sha256_many(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        // 448-bit message "abcdbcde..." from FIPS 180-4 appendix.
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex(&sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn derived_constants_spot_check() {
        // First round constant is frac(cbrt(2)) = 0x428a2f98; first IV word
        // is frac(sqrt(2)) = 0x6a09e667.
        let c = constants();
        assert_eq!(c.k[0], 0x428a2f98);
        assert_eq!(c.k[63], 0xc67178f2);
        assert_eq!(c.h0[0], 0x6a09e667);
        assert_eq!(c.h0[7], 0x5be0cd19);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn incremental_lengths_cross_block_boundaries() {
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }
}
