//! # iniva-crypto
//!
//! Cryptographic substrate for the Iniva reproduction (DSN 2024,
//! arXiv:2404.04948), built from scratch:
//!
//! * [`nat`] — arbitrary-precision naturals (parameter derivation only).
//! * [`sha256`] — SHA-256 with derived round constants.
//! * [`fields`] — `Fp`/`Fr` Montgomery arithmetic and the
//!   `Fp2`/`Fp6`/`Fp12` tower for BLS12-381.
//! * [`curve`], [`g1`], [`g2`] — generic Jacobian curve arithmetic and the
//!   two pairing groups.
//! * [`pairing`] — the optimal ate pairing, correctness-first.
//! * [`bls`] — BLS multi-signatures with multiplicities (the paper's
//!   indivisible aggregation scheme).
//! * [`sim_scheme`] — a fast protocol-faithful stand-in for Monte-Carlo
//!   experiments.
//! * [`multisig`] — the [`multisig::VoteScheme`] abstraction both implement.
//! * [`shuffle`] — deterministic per-round role shuffling (VRF substitute).
//!
//! Every BLS12-381 constant is *derived* at startup from the curve
//! parameter `z = 0xd201_0000_0001_0000` (see [`params`]); tests compare the
//! derived values against the published constants and cross-validate curve
//! and pairing behaviour against the `blst` oracle (dev-dependency only).
//!
//! ## Example
//! ```
//! use iniva_crypto::bls::BlsScheme;
//! use iniva_crypto::multisig::VoteScheme;
//!
//! let committee = BlsScheme::new(4, b"example");
//! let msg = b"block #1";
//! // An internal node aggregates two children twice and itself three times
//! // (paper Eq. 1): agg(sigma_1^2, sigma_2^2, sigma_0^3).
//! let agg = committee.combine(
//!     &committee.combine(
//!         &committee.scale(&committee.sign(1, msg), 2),
//!         &committee.scale(&committee.sign(2, msg), 2),
//!     ),
//!     &committee.scale(&committee.sign(0, msg), 3),
//! );
//! assert!(committee.verify(msg, &agg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bls;
pub mod curve;
pub mod fields;
pub mod g1;
pub mod g2;
pub mod multisig;
pub mod nat;
pub mod pairing;
pub mod params;
pub mod sha256;
pub mod shuffle;
pub mod sim_scheme;

pub use multisig::{Multiplicities, SignerId, VoteScheme, WireScheme};
pub use shuffle::Assignment;
