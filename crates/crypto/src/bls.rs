//! BLS multi-signatures over BLS12-381 (signatures in G1, public keys in
//! G2), with multiplicity-aware aggregation.
//!
//! Verification uses the product-of-pairings identity
//! `e(-σ, g2) · e(H(m), Σ mult_i · pk_i) == 1`, which costs two Miller loops
//! and one final exponentiation.
//!
//! Rogue-key attacks are out of scope: the committee is fixed and keys are
//! assumed registered with proofs of possession (standard for
//! committee-based chains; see paper Section III).

use crate::curve::Point;
use crate::fields::Fr;
use crate::g1::{self, G1};
use crate::g2::{self, G2};
use crate::multisig::{BatchOutcome, Multiplicities, SignerId, VoteScheme, WireScheme};
use crate::pairing::MultiPairing;
use crate::sha256::sha256_many;
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A BLS secret key (an `Fr` scalar).
#[derive(Clone, Debug)]
pub struct SecretKey(Fr);

/// A BLS public key (`sk · g2`).
#[derive(Clone, Copy, Debug)]
pub struct PublicKey(pub G2);

impl SecretKey {
    /// Derives a secret key from seed bytes (hashed to 64 bytes, reduced
    /// mod `r`).
    pub fn from_seed(seed: &[u8]) -> Self {
        let h1 = sha256_many(&[b"iniva-bls-keygen/0", seed]);
        let h2 = sha256_many(&[b"iniva-bls-keygen/1", seed]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&h1);
        wide[32..].copy_from_slice(&h2);
        SecretKey(Fr::from_wide_bytes(&wide))
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(g2::generator().mul_limbs(&self.0.to_scalar_limbs()))
    }

    /// Signs a message: `σ = sk · H(m) ∈ G1`.
    pub fn sign(&self, msg: &[u8]) -> G1 {
        g1::hash_to_curve(msg).mul_limbs(&self.0.to_scalar_limbs())
    }
}

/// An aggregate BLS signature with its claimed multiplicity vector.
///
/// The group element is indivisible; the multiplicities are public metadata
/// that verification checks against the element.
#[derive(Clone, Debug)]
pub struct BlsAggregate {
    /// The aggregated G1 point `Σ mult_i · σ_i`.
    pub point: G1,
    /// Claimed multiset of signers.
    pub mults: Multiplicities,
}

// Jacobian coordinates are not canonical, so equality goes through the
// group law; the multiplicity vector is part of the aggregate's identity.
impl PartialEq for BlsAggregate {
    fn eq(&self, other: &Self) -> bool {
        self.point.eq_point(&other.point) && self.mults == other.mults
    }
}

impl Eq for BlsAggregate {}

impl WireEncode for BlsAggregate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_array(&g1::serialize_compressed(&self.point));
        self.mults.encode(enc);
    }
}

impl WireDecode for BlsAggregate {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let bytes = dec.get_array::<48>()?;
        // Full validation before the point can reach a pairing: canonical
        // flags, x < p, on-curve, and inside the order-r subgroup. A
        // non-subgroup point would let a hostile peer smuggle a low-order
        // component past verification.
        let point = g1::deserialize_compressed(&bytes).ok_or(DecodeError::Malformed {
            context: "BlsAggregate point is not a valid compressed G1 subgroup element",
        })?;
        let mults = Multiplicities::decode(dec)?;
        Ok(BlsAggregate { point, mults })
    }
}

impl PublicKey {
    /// Serializes to the 96-byte compressed G2 format.
    pub fn to_compressed(&self) -> [u8; 96] {
        g2::serialize_compressed(&self.0)
    }

    /// Deserializes a compressed G2 public key with full subgroup
    /// validation; `None` on any malformed or non-subgroup encoding.
    pub fn from_compressed(bytes: &[u8; 96]) -> Option<Self> {
        g2::deserialize_compressed(bytes).map(PublicKey)
    }
}

/// Entries retained by the per-message hash-to-curve cache. The live
/// protocol verifies everything in a view against the single message
/// `vote_message(block_hash, view)`, and only a handful of views are ever
/// in flight, so a small window captures effectively every hit while
/// bounding memory against hostile message churn.
const H2C_CACHE_CAP: usize = 32;

/// A committee keyring implementing [`VoteScheme`] with real BLS crypto.
pub struct BlsScheme {
    secrets: Vec<SecretKey>,
    publics: Vec<PublicKey>,
    /// `msg -> hash_to_curve(msg)` cache, keyed by the *full* message
    /// bytes (never by view alone — a stale hash across views would make
    /// verification accept votes for the wrong block). Drop-oldest at
    /// [`H2C_CACHE_CAP`].
    h2c_cache: Mutex<VecDeque<(Vec<u8>, G1)>>,
    /// Multi-pairing probes executed by batch verification (one per
    /// batch-equation check, including bisection probes). Test/metric
    /// hook: culprit isolation must probe O(k·log n) times, not re-verify
    /// the whole batch per item.
    batch_probes: AtomicU64,
}

impl BlsScheme {
    /// Builds a committee of `n` deterministic keypairs from a seed.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        let mut secrets = Vec::with_capacity(n);
        let mut publics = Vec::with_capacity(n);
        for i in 0..n {
            let sk = SecretKey::from_seed(&[seed, &(i as u32).to_be_bytes()].concat());
            publics.push(sk.public_key());
            secrets.push(sk);
        }
        BlsScheme {
            secrets,
            publics,
            h2c_cache: Mutex::new(VecDeque::new()),
            batch_probes: AtomicU64::new(0),
        }
    }

    /// Public key of a member.
    pub fn public_key(&self, id: SignerId) -> Option<&PublicKey> {
        self.publics.get(id as usize)
    }

    /// Multi-pairing probes executed so far by [`VoteScheme::verify_batch`]
    /// (each probe is one batch equation: two-plus Miller loops and one
    /// final exponentiation).
    pub fn batch_probe_count(&self) -> u64 {
        // ORDER: monotone stat counter; readers tolerate a slightly stale
        // value and no other memory is published through it.
        self.batch_probes.load(Ordering::Relaxed)
    }

    /// Mirrors the scheme's cumulative verification stats into
    /// `registry` under the `crypto.` prefix (idempotent: values are
    /// stored, not added).
    pub fn export(&self, registry: &iniva_obs::Registry) {
        registry
            .counter("crypto.batch_probes")
            .store(self.batch_probe_count());
    }

    /// `hash_to_curve(msg)` through the bounded per-message cache. The
    /// try-and-increment map costs a sqrt plus a cofactor mul per call;
    /// every signature of a view hashes the same `vote_message`, so the
    /// hot path hits the cache on all but the first verification.
    fn hash_msg(&self, msg: &[u8]) -> G1 {
        let cache = self.h2c_cache.lock().unwrap();
        if let Some((_, h)) = cache.iter().find(|(k, _)| k == msg) {
            return *h;
        }
        drop(cache);
        let h = g1::hash_to_curve(msg);
        let mut cache = self.h2c_cache.lock().unwrap();
        if !cache.iter().any(|(k, _)| k == msg) {
            if cache.len() >= H2C_CACHE_CAP {
                cache.pop_front();
            }
            cache.push_back((msg.to_vec(), h));
        }
        h
    }

    /// `apk = Σ mult_i · pk_i` for a claimed multiset; `None` when a
    /// claimed signer is outside the committee.
    fn apk_of(&self, mults: &Multiplicities) -> Option<G2> {
        let mut apk: G2 = Point::infinity();
        for (signer, mult) in mults.iter() {
            let pk = self.publics.get(signer as usize)?;
            apk = apk.add(&pk.0.mul_u64(mult));
        }
        Some(apk)
    }
}

/// A batch item after per-aggregate precomputation: the signature point
/// and the aggregate public key, both already scaled by the item's random
/// coefficient. Bisection probes recombine these — the scalar muls and the
/// `apk` accumulation are paid once per item, never per probe.
struct BatchItem {
    /// Index of the message group the item belongs to.
    group: usize,
    /// Index of the item within its group.
    index: usize,
    /// `r_i · σ_i`.
    sigma_r: G1,
    /// `r_i · apk_i`.
    apk_r: G2,
}

impl BlsScheme {
    /// One probe of the batch equation
    /// `e(-Σ rᵢσᵢ, g2) · Π_j e(H(m_j), Σ_{i∈j} rᵢ·apkᵢ) == 1`
    /// over a subset of precomputed items. Costs `1 + #groups-present`
    /// Miller loops and one final exponentiation.
    fn batch_holds(&self, items: &[&BatchItem], hashes: &[G1]) -> bool {
        // ORDER: stat counter only needs atomicity, not ordering; nothing
        // synchronizes on its value.
        self.batch_probes.fetch_add(1, Ordering::Relaxed);
        let mut sigma: G1 = Point::infinity();
        let mut apks: Vec<Option<G2>> = vec![None; hashes.len()];
        for item in items {
            sigma = sigma.add(&item.sigma_r);
            apks[item.group] = Some(match &apks[item.group] {
                None => item.apk_r,
                Some(acc) => acc.add(&item.apk_r),
            });
        }
        let mut mp = MultiPairing::new();
        mp.add(&sigma.negate(), &g2::generator());
        for (group, apk) in apks.iter().enumerate() {
            if let Some(apk) = apk {
                mp.add(&hashes[group], apk);
            }
        }
        mp.is_one()
    }

    /// Recursively bisects a failing subset until the culprit items are
    /// isolated, appending their `(group, index)` pairs to `bad`. The
    /// caller has already established that `items` fails the batch
    /// equation, so a singleton is a culprit without any further probe.
    fn bisect(&self, items: &[&BatchItem], hashes: &[G1], bad: &mut Vec<(usize, usize)>) {
        if let [culprit] = items {
            bad.push((culprit.group, culprit.index));
            return;
        }
        let (lo, hi) = items.split_at(items.len() / 2);
        let lo_fails = !self.batch_holds(lo, hashes);
        if lo_fails {
            self.bisect(lo, hashes, bad);
        }
        // The batch value of the union is the product of the halves'
        // values in GT, so a clean left half means the right half inherits
        // the parent's failure without spending a probe; a failing left
        // half says nothing about the right, which gets its own probe.
        let hi_fails = if lo_fails {
            !self.batch_holds(hi, hashes)
        } else {
            true
        };
        if hi_fails {
            self.bisect(hi, hashes, bad);
        }
    }
}

impl VoteScheme for BlsScheme {
    type Aggregate = BlsAggregate;

    fn sign(&self, signer: SignerId, msg: &[u8]) -> BlsAggregate {
        let sk = &self.secrets[signer as usize];
        // Through the shared per-message cache: a replica signs the same
        // vote message it will verify its peers' signatures against.
        BlsAggregate {
            point: self.hash_msg(msg).mul_limbs(&sk.0.to_scalar_limbs()),
            mults: Multiplicities::singleton(signer),
        }
    }

    fn combine(&self, a: &BlsAggregate, b: &BlsAggregate) -> BlsAggregate {
        BlsAggregate {
            point: a.point.add(&b.point),
            mults: a.mults.merge(&b.mults),
        }
    }

    fn scale(&self, a: &BlsAggregate, k: u64) -> BlsAggregate {
        BlsAggregate {
            point: a.point.mul_u64(k),
            mults: a.mults.scale(k),
        }
    }

    fn verify(&self, msg: &[u8], agg: &BlsAggregate) -> bool {
        if agg.mults.is_empty() {
            return agg.point.is_infinity();
        }
        let Some(apk) = self.apk_of(&agg.mults) else {
            return false;
        };
        let h = self.hash_msg(msg);
        crate::pairing::pairing_eq(&agg.point, &g2::generator(), &h, &apk)
    }

    /// Random-linear-combination batch verification: one probe of
    /// `e(-Σ rᵢσᵢ, g2) · Π_j e(H(m_j), Σ_{i∈j} rᵢ·apkᵢ) == 1`
    /// replaces two Miller loops *per aggregate* with
    /// `1 + #distinct-messages` Miller loops and a single final
    /// exponentiation for the whole batch. On failure, bisection isolates
    /// the culprits in `O(k·log n)` probes over the precomputed
    /// `(rᵢσᵢ, rᵢ·apkᵢ)` pairs — per-item scalar muls and `apk`
    /// accumulation are never repeated across probes.
    ///
    /// The coefficients `rᵢ` are 128-bit scalars derived Fiat-Shamir-style
    /// from a SHA-256 transcript binding *every* message and aggregate in
    /// the batch (deterministic — wall-clock entropy is unavailable under
    /// the test harnesses). Cancelling two invalid items would require
    /// grinding the transcript hash, exactly as for any Fiat-Shamir
    /// challenge; an honest-but-buggy caller cannot hit it by accident.
    fn verify_batch(&self, msg_groups: &[(&[u8], &[BlsAggregate])]) -> BatchOutcome {
        let total: usize = msg_groups.iter().map(|(_, aggs)| aggs.len()).sum();
        if total <= 1 {
            // Nothing to amortize: the single-item batch equation is the
            // plain verification equation.
            let mut bad = Vec::new();
            for (gi, (msg, aggs)) in msg_groups.iter().enumerate() {
                for (ai, agg) in aggs.iter().enumerate() {
                    if !self.verify(msg, agg) {
                        bad.push((gi, ai));
                    }
                }
            }
            return if bad.is_empty() {
                BatchOutcome::AllValid
            } else {
                BatchOutcome::Invalid(bad)
            };
        }

        // Transcript binding every message and every aggregate (point and
        // claimed multiplicities), so the challenge scalars commit to the
        // whole batch. Injectively framed: every variable-length region
        // (group list, message bytes, aggregate list, multiplicity table)
        // is length-prefixed, so no two distinct batches serialize to the
        // same transcript bytes.
        let mut transcript: Vec<u8> = b"iniva-bls-batch/v1".to_vec();
        transcript.extend_from_slice(&(msg_groups.len() as u64).to_be_bytes());
        for (msg, aggs) in msg_groups {
            transcript.extend_from_slice(&(msg.len() as u64).to_be_bytes());
            transcript.extend_from_slice(msg);
            transcript.extend_from_slice(&(aggs.len() as u64).to_be_bytes());
            for agg in *aggs {
                transcript.extend_from_slice(&g1::serialize_compressed(&agg.point));
                transcript.extend_from_slice(&(agg.mults.distinct() as u64).to_be_bytes());
                for (signer, mult) in agg.mults.iter() {
                    transcript.extend_from_slice(&signer.to_be_bytes());
                    transcript.extend_from_slice(&mult.to_be_bytes());
                }
            }
        }
        let seed = sha256_many(&[transcript.as_slice()]);

        // Per-item precomputation. Structural failures (unknown signer,
        // non-infinity empty aggregate) are culprits without any pairing;
        // trivially-valid empty aggregates contribute the identity and are
        // excluded from the combination.
        let mut bad: Vec<(usize, usize)> = Vec::new();
        let mut items: Vec<BatchItem> = Vec::with_capacity(total);
        let mut hashes: Vec<G1> = Vec::with_capacity(msg_groups.len());
        let mut counter = 0u64;
        for (gi, (msg, aggs)) in msg_groups.iter().enumerate() {
            hashes.push(self.hash_msg(msg));
            for (ai, agg) in aggs.iter().enumerate() {
                if agg.mults.is_empty() {
                    if !agg.point.is_infinity() {
                        bad.push((gi, ai));
                    }
                    continue;
                }
                let Some(apk) = self.apk_of(&agg.mults) else {
                    bad.push((gi, ai));
                    continue;
                };
                // 128-bit challenge from the bound transcript; the
                // small-exponent test's error bound is 2^-128 per item.
                let r = sha256_many(&[b"iniva-bls-batch/r", &seed, &counter.to_be_bytes()]);
                counter += 1;
                let mut limbs = [
                    u64::from_be_bytes(r[8..16].try_into().unwrap()),
                    u64::from_be_bytes(r[0..8].try_into().unwrap()),
                ];
                if limbs == [0, 0] {
                    limbs[0] = 1;
                }
                items.push(BatchItem {
                    group: gi,
                    index: ai,
                    sigma_r: agg.point.mul_limbs(&limbs),
                    apk_r: apk.mul_limbs(&limbs),
                });
            }
        }

        let item_refs: Vec<&BatchItem> = items.iter().collect();
        if !item_refs.is_empty() && !self.batch_holds(&item_refs, &hashes) {
            self.bisect(&item_refs, &hashes, &mut bad);
        }
        if bad.is_empty() {
            BatchOutcome::AllValid
        } else {
            bad.sort_unstable();
            BatchOutcome::Invalid(bad)
        }
    }

    fn multiplicities<'a>(&self, agg: &'a BlsAggregate) -> &'a Multiplicities {
        &agg.mults
    }

    fn committee_size(&self) -> usize {
        self.publics.len()
    }
}

impl WireScheme for BlsScheme {
    const NAME: &'static str = "bls";
    const REAL_CRYPTO: bool = true;

    fn new_committee(n: usize, seed: &[u8]) -> Self {
        BlsScheme::new(n, seed)
    }

    fn export_observability(&self, registry: &iniva_obs::Registry) {
        self.export(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> BlsScheme {
        BlsScheme::new(4, b"test-committee")
    }

    #[test]
    fn single_signature_verifies() {
        let s = scheme();
        let sig = s.sign(0, b"block-1");
        assert!(s.verify(b"block-1", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let s = scheme();
        let sig = s.sign(0, b"block-1");
        assert!(!s.verify(b"block-2", &sig));
    }

    #[test]
    fn wrong_claimed_signer_rejected() {
        let s = scheme();
        let mut sig = s.sign(0, b"block-1");
        sig.mults = Multiplicities::singleton(1);
        assert!(!s.verify(b"block-1", &sig));
    }

    #[test]
    fn aggregate_with_multiplicities_verifies() {
        let s = scheme();
        let msg = b"block-7";
        // Paper Eq. (1): agg(σ1^2, σ2^2, σi^3).
        let s1 = s.scale(&s.sign(1, msg), 2);
        let s2 = s.scale(&s.sign(2, msg), 2);
        let si = s.scale(&s.sign(0, msg), 3);
        let agg = s.combine(&s.combine(&s1, &s2), &si);
        assert_eq!(agg.mults.get(0), 3);
        assert_eq!(agg.mults.get(1), 2);
        assert_eq!(agg.mults.get(2), 2);
        assert!(s.verify(msg, &agg));
    }

    #[test]
    fn tampered_multiplicity_rejected() {
        let s = scheme();
        let msg = b"block-7";
        let agg = s.combine(&s.sign(1, msg), &s.sign(2, msg));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::from_iter([(1, 2), (2, 1)]);
        assert!(s.verify(msg, &agg));
        assert!(!s.verify(msg, &forged));
    }

    #[test]
    fn omitting_a_signer_from_metadata_rejected() {
        // Indivisibility at the metadata level: the leader cannot claim an
        // aggregate contains fewer signers than it actually does.
        let s = scheme();
        let msg = b"block-9";
        let agg = s.combine(&s.sign(1, msg), &s.sign(2, msg));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::singleton(1);
        assert!(!s.verify(msg, &forged));
    }

    #[test]
    fn unknown_signer_id_rejected() {
        let s = scheme();
        let mut sig = s.sign(0, b"m");
        sig.mults = Multiplicities::singleton(99);
        assert!(!s.verify(b"m", &sig));
    }

    #[test]
    fn empty_aggregate_is_infinity_only() {
        let s = scheme();
        let empty = BlsAggregate {
            point: Point::infinity(),
            mults: Multiplicities::new(),
        };
        assert!(s.verify(b"m", &empty));
    }

    #[test]
    fn aggregate_wire_roundtrip_and_verifies() {
        use iniva_net::wire::Codec;
        let s = scheme();
        let m = b"wire";
        let agg = s.combine(&s.scale(&s.sign(1, m), 2), &s.sign(3, m));
        let frame = agg.to_frame();
        // 48-byte compressed point + 4-byte count + 2 × 12-byte entries.
        assert_eq!(frame.len(), 48 + 4 + 2 * 12);
        let back = BlsAggregate::from_frame(frame.clone()).unwrap();
        assert_eq!(back, agg);
        assert!(s.verify(m, &back));
        // Canonical: re-encoding reproduces the exact bytes.
        assert_eq!(&back.to_frame()[..], &frame[..]);
        // Truncations error cleanly.
        for cut in [0, 20, 47, 48, frame.len() - 1] {
            assert!(BlsAggregate::from_frame(frame.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn wire_rejects_tampered_point() {
        use iniva_net::wire::Codec;
        let s = scheme();
        let agg = s.sign(0, b"m");
        let frame = agg.to_frame();
        // Flip a bit in x: overwhelmingly off-curve or outside the
        // subgroup; if the mutated x still decompresses, the signature
        // must no longer verify.
        let mut bytes = frame.to_vec();
        bytes[30] ^= 0x04;
        match BlsAggregate::from_frame(bytes::Bytes::from(bytes)) {
            Err(DecodeError::Malformed { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(mutated) => assert!(!s.verify(b"m", &mutated)),
        }
    }

    #[test]
    fn empty_aggregate_roundtrips_as_infinity() {
        use iniva_net::wire::Codec;
        let empty = BlsAggregate {
            point: Point::infinity(),
            mults: Multiplicities::new(),
        };
        let back = BlsAggregate::from_frame(empty.to_frame()).unwrap();
        assert!(back.point.is_infinity());
        assert!(back.mults.is_empty());
    }

    #[test]
    fn batch_verify_all_good_same_message() {
        let s = BlsScheme::new(8, b"batch-good");
        let msg: &[u8] = b"view-7-vote";
        let aggs: Vec<_> = (0..8).map(|i| s.sign(i, msg)).collect();
        let before = s.batch_probe_count();
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(msg, &aggs)];
        assert!(s.verify_batch(&groups).all_valid());
        assert_eq!(
            s.batch_probe_count() - before,
            1,
            "a clean batch costs exactly one multi-pairing probe"
        );
    }

    #[test]
    fn batch_verify_isolates_single_culprit_without_per_item_pairings() {
        let s = BlsScheme::new(8, b"batch-one-bad");
        let msg: &[u8] = b"view-9-vote";
        let mut aggs: Vec<_> = (0..8).map(|i| s.sign(i, msg)).collect();
        // Forge item 5: claim signer 6 on signer 5's point.
        aggs[5].mults = Multiplicities::singleton(6);
        let before = s.batch_probe_count();
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(msg, &aggs)];
        assert_eq!(s.verify_batch(&groups), BatchOutcome::Invalid(vec![(0, 5)]));
        let probes = s.batch_probe_count() - before;
        // 1 initial + ≤ 2·log2(8) bisection probes, strictly fewer than
        // the 8 pairing checks per-item verification would spend.
        assert!(
            probes < 8,
            "culprit isolation must beat per-item re-verification, used {probes} probes"
        );
    }

    #[test]
    fn batch_verify_mixed_messages_and_all_bad() {
        let s = BlsScheme::new(4, b"batch-mixed");
        let m1: &[u8] = b"view-1";
        let m2: &[u8] = b"view-2";
        let g1 = vec![s.sign(0, m1), s.sign(1, m1)];
        // Both items of group 1 are signatures over the *wrong* message.
        let g2 = vec![s.sign(2, m1), s.sign(3, m1)];
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(m1, &g1), (m2, &g2)];
        assert_eq!(
            s.verify_batch(&groups),
            BatchOutcome::Invalid(vec![(1, 0), (1, 1)])
        );
    }

    #[test]
    fn batch_verify_structural_failures_cost_no_pairings() {
        let s = BlsScheme::new(4, b"batch-structural");
        let msg: &[u8] = b"m";
        let mut unknown = s.sign(0, msg);
        unknown.mults = Multiplicities::singleton(99);
        let nonzero_empty = BlsAggregate {
            point: s.sign(1, msg).point,
            mults: Multiplicities::new(),
        };
        let ok_empty = BlsAggregate {
            point: Point::infinity(),
            mults: Multiplicities::new(),
        };
        let aggs = vec![unknown, nonzero_empty, ok_empty];
        let before = s.batch_probe_count();
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(msg, &aggs)];
        assert_eq!(
            s.verify_batch(&groups),
            BatchOutcome::Invalid(vec![(0, 0), (0, 1)])
        );
        assert_eq!(
            s.batch_probe_count() - before,
            0,
            "no combinable items left, so no probe should run"
        );
    }

    #[test]
    fn batch_agrees_with_per_item_verify() {
        let s = BlsScheme::new(4, b"batch-agree");
        let msg: &[u8] = b"agreement";
        let good = s.combine(&s.scale(&s.sign(0, msg), 2), &s.sign(1, msg));
        let mut forged = good.clone();
        forged.mults = Multiplicities::from_iter([(0, 1), (1, 1)]);
        let aggs = vec![good, s.sign(2, msg), forged];
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(msg, &aggs)];
        let outcome = s.verify_batch(&groups);
        for (i, agg) in aggs.iter().enumerate() {
            assert_eq!(
                s.verify(msg, agg),
                !outcome.culprits().contains(&(0, i)),
                "batch and per-item disagree on item {i}"
            );
        }
    }

    #[test]
    fn h2c_cache_never_serves_stale_message_across_views() {
        let s = scheme();
        // Simulate per-view vote messages: verify in one view (populating
        // the cache), then check that the next view's message still
        // verifies only its own signatures — a stale cache entry would
        // accept msg_v1 signatures under msg_v2 (or vice versa).
        for view in 1u64..=3 {
            let msg = [b"vote".as_slice(), &view.to_be_bytes()].concat();
            let prev = [b"vote".as_slice(), &(view - 1).to_be_bytes()].concat();
            let sig = s.sign(0, &msg);
            assert!(s.verify(&msg, &sig), "cold verify, view {view}");
            assert!(s.verify(&msg, &sig), "cached verify, view {view}");
            assert!(
                !s.verify(&prev, &sig),
                "view-{view} signature must not verify against the previous view's cached message"
            );
        }
        // Same property through the batch path.
        let m1 = [b"vote".as_slice(), &1u64.to_be_bytes()].concat();
        let m2 = [b"vote".as_slice(), &2u64.to_be_bytes()].concat();
        let s1 = vec![s.sign(1, &m1), s.sign(2, &m1)];
        let wrong = vec![s.sign(3, &m1)];
        let groups: Vec<(&[u8], &[BlsAggregate])> = vec![(&m1, &s1), (&m2, &wrong)];
        assert_eq!(s.verify_batch(&groups), BatchOutcome::Invalid(vec![(1, 0)]));
    }

    #[test]
    fn public_key_compressed_roundtrip() {
        let s = scheme();
        let pk = s.public_key(2).unwrap();
        let back = PublicKey::from_compressed(&pk.to_compressed()).unwrap();
        assert!(back.0.eq_point(&pk.0));
        let mut bad = pk.to_compressed();
        bad[0] &= 0x7f;
        assert!(PublicKey::from_compressed(&bad).is_none());
    }
}
