//! BLS multi-signatures over BLS12-381 (signatures in G1, public keys in
//! G2), with multiplicity-aware aggregation.
//!
//! Verification uses the product-of-pairings identity
//! `e(-σ, g2) · e(H(m), Σ mult_i · pk_i) == 1`, which costs two Miller loops
//! and one final exponentiation.
//!
//! Rogue-key attacks are out of scope: the committee is fixed and keys are
//! assumed registered with proofs of possession (standard for
//! committee-based chains; see paper Section III).

use crate::curve::Point;
use crate::fields::Fr;
use crate::g1::{self, G1};
use crate::g2::{self, G2};
use crate::multisig::{Multiplicities, SignerId, VoteScheme};
use crate::sha256::sha256_many;

/// A BLS secret key (an `Fr` scalar).
#[derive(Clone, Debug)]
pub struct SecretKey(Fr);

/// A BLS public key (`sk · g2`).
#[derive(Clone, Copy, Debug)]
pub struct PublicKey(pub G2);

impl SecretKey {
    /// Derives a secret key from seed bytes (hashed to 64 bytes, reduced
    /// mod `r`).
    pub fn from_seed(seed: &[u8]) -> Self {
        let h1 = sha256_many(&[b"iniva-bls-keygen/0", seed]);
        let h2 = sha256_many(&[b"iniva-bls-keygen/1", seed]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&h1);
        wide[32..].copy_from_slice(&h2);
        SecretKey(Fr::from_wide_bytes(&wide))
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(g2::generator().mul_limbs(&self.0.to_scalar_limbs()))
    }

    /// Signs a message: `σ = sk · H(m) ∈ G1`.
    pub fn sign(&self, msg: &[u8]) -> G1 {
        g1::hash_to_curve(msg).mul_limbs(&self.0.to_scalar_limbs())
    }
}

/// An aggregate BLS signature with its claimed multiplicity vector.
///
/// The group element is indivisible; the multiplicities are public metadata
/// that verification checks against the element.
#[derive(Clone, Debug)]
pub struct BlsAggregate {
    /// The aggregated G1 point `Σ mult_i · σ_i`.
    pub point: G1,
    /// Claimed multiset of signers.
    pub mults: Multiplicities,
}

/// A committee keyring implementing [`VoteScheme`] with real BLS crypto.
pub struct BlsScheme {
    secrets: Vec<SecretKey>,
    publics: Vec<PublicKey>,
}

impl BlsScheme {
    /// Builds a committee of `n` deterministic keypairs from a seed.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        let mut secrets = Vec::with_capacity(n);
        let mut publics = Vec::with_capacity(n);
        for i in 0..n {
            let sk = SecretKey::from_seed(&[seed, &(i as u32).to_be_bytes()].concat());
            publics.push(sk.public_key());
            secrets.push(sk);
        }
        BlsScheme { secrets, publics }
    }

    /// Public key of a member.
    pub fn public_key(&self, id: SignerId) -> Option<&PublicKey> {
        self.publics.get(id as usize)
    }
}

impl VoteScheme for BlsScheme {
    type Aggregate = BlsAggregate;

    fn sign(&self, signer: SignerId, msg: &[u8]) -> BlsAggregate {
        let sk = &self.secrets[signer as usize];
        BlsAggregate {
            point: sk.sign(msg),
            mults: Multiplicities::singleton(signer),
        }
    }

    fn combine(&self, a: &BlsAggregate, b: &BlsAggregate) -> BlsAggregate {
        BlsAggregate {
            point: a.point.add(&b.point),
            mults: a.mults.merge(&b.mults),
        }
    }

    fn scale(&self, a: &BlsAggregate, k: u64) -> BlsAggregate {
        BlsAggregate {
            point: a.point.mul_u64(k),
            mults: a.mults.scale(k),
        }
    }

    fn verify(&self, msg: &[u8], agg: &BlsAggregate) -> bool {
        if agg.mults.is_empty() {
            return agg.point.is_infinity();
        }
        // apk = Σ mult_i · pk_i
        let mut apk: G2 = Point::infinity();
        for (signer, mult) in agg.mults.iter() {
            match self.publics.get(signer as usize) {
                Some(pk) => apk = apk.add(&pk.0.mul_u64(mult)),
                None => return false,
            }
        }
        let h = g1::hash_to_curve(msg);
        crate::pairing::pairing_eq(&agg.point, &g2::generator(), &h, &apk)
    }

    fn multiplicities<'a>(&self, agg: &'a BlsAggregate) -> &'a Multiplicities {
        &agg.mults
    }

    fn committee_size(&self) -> usize {
        self.publics.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> BlsScheme {
        BlsScheme::new(4, b"test-committee")
    }

    #[test]
    fn single_signature_verifies() {
        let s = scheme();
        let sig = s.sign(0, b"block-1");
        assert!(s.verify(b"block-1", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let s = scheme();
        let sig = s.sign(0, b"block-1");
        assert!(!s.verify(b"block-2", &sig));
    }

    #[test]
    fn wrong_claimed_signer_rejected() {
        let s = scheme();
        let mut sig = s.sign(0, b"block-1");
        sig.mults = Multiplicities::singleton(1);
        assert!(!s.verify(b"block-1", &sig));
    }

    #[test]
    fn aggregate_with_multiplicities_verifies() {
        let s = scheme();
        let msg = b"block-7";
        // Paper Eq. (1): agg(σ1^2, σ2^2, σi^3).
        let s1 = s.scale(&s.sign(1, msg), 2);
        let s2 = s.scale(&s.sign(2, msg), 2);
        let si = s.scale(&s.sign(0, msg), 3);
        let agg = s.combine(&s.combine(&s1, &s2), &si);
        assert_eq!(agg.mults.get(0), 3);
        assert_eq!(agg.mults.get(1), 2);
        assert_eq!(agg.mults.get(2), 2);
        assert!(s.verify(msg, &agg));
    }

    #[test]
    fn tampered_multiplicity_rejected() {
        let s = scheme();
        let msg = b"block-7";
        let agg = s.combine(&s.sign(1, msg), &s.sign(2, msg));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::from_iter([(1, 2), (2, 1)]);
        assert!(s.verify(msg, &agg));
        assert!(!s.verify(msg, &forged));
    }

    #[test]
    fn omitting_a_signer_from_metadata_rejected() {
        // Indivisibility at the metadata level: the leader cannot claim an
        // aggregate contains fewer signers than it actually does.
        let s = scheme();
        let msg = b"block-9";
        let agg = s.combine(&s.sign(1, msg), &s.sign(2, msg));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::singleton(1);
        assert!(!s.verify(msg, &forged));
    }

    #[test]
    fn unknown_signer_id_rejected() {
        let s = scheme();
        let mut sig = s.sign(0, b"m");
        sig.mults = Multiplicities::singleton(99);
        assert!(!s.verify(b"m", &sig));
    }

    #[test]
    fn empty_aggregate_is_infinity_only() {
        let s = scheme();
        let empty = BlsAggregate {
            point: Point::infinity(),
            mults: Multiplicities::new(),
        };
        assert!(s.verify(b"m", &empty));
    }
}
