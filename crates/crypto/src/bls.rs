//! BLS multi-signatures over BLS12-381 (signatures in G1, public keys in
//! G2), with multiplicity-aware aggregation.
//!
//! Verification uses the product-of-pairings identity
//! `e(-σ, g2) · e(H(m), Σ mult_i · pk_i) == 1`, which costs two Miller loops
//! and one final exponentiation.
//!
//! Rogue-key attacks are out of scope: the committee is fixed and keys are
//! assumed registered with proofs of possession (standard for
//! committee-based chains; see paper Section III).

use crate::curve::Point;
use crate::fields::Fr;
use crate::g1::{self, G1};
use crate::g2::{self, G2};
use crate::multisig::{Multiplicities, SignerId, VoteScheme, WireScheme};
use crate::sha256::sha256_many;
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};

/// A BLS secret key (an `Fr` scalar).
#[derive(Clone, Debug)]
pub struct SecretKey(Fr);

/// A BLS public key (`sk · g2`).
#[derive(Clone, Copy, Debug)]
pub struct PublicKey(pub G2);

impl SecretKey {
    /// Derives a secret key from seed bytes (hashed to 64 bytes, reduced
    /// mod `r`).
    pub fn from_seed(seed: &[u8]) -> Self {
        let h1 = sha256_many(&[b"iniva-bls-keygen/0", seed]);
        let h2 = sha256_many(&[b"iniva-bls-keygen/1", seed]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&h1);
        wide[32..].copy_from_slice(&h2);
        SecretKey(Fr::from_wide_bytes(&wide))
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(g2::generator().mul_limbs(&self.0.to_scalar_limbs()))
    }

    /// Signs a message: `σ = sk · H(m) ∈ G1`.
    pub fn sign(&self, msg: &[u8]) -> G1 {
        g1::hash_to_curve(msg).mul_limbs(&self.0.to_scalar_limbs())
    }
}

/// An aggregate BLS signature with its claimed multiplicity vector.
///
/// The group element is indivisible; the multiplicities are public metadata
/// that verification checks against the element.
#[derive(Clone, Debug)]
pub struct BlsAggregate {
    /// The aggregated G1 point `Σ mult_i · σ_i`.
    pub point: G1,
    /// Claimed multiset of signers.
    pub mults: Multiplicities,
}

// Jacobian coordinates are not canonical, so equality goes through the
// group law; the multiplicity vector is part of the aggregate's identity.
impl PartialEq for BlsAggregate {
    fn eq(&self, other: &Self) -> bool {
        self.point.eq_point(&other.point) && self.mults == other.mults
    }
}

impl Eq for BlsAggregate {}

impl WireEncode for BlsAggregate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_array(&g1::serialize_compressed(&self.point));
        self.mults.encode(enc);
    }
}

impl WireDecode for BlsAggregate {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let bytes = dec.get_array::<48>()?;
        // Full validation before the point can reach a pairing: canonical
        // flags, x < p, on-curve, and inside the order-r subgroup. A
        // non-subgroup point would let a hostile peer smuggle a low-order
        // component past verification.
        let point = g1::deserialize_compressed(&bytes).ok_or(DecodeError::Malformed {
            context: "BlsAggregate point is not a valid compressed G1 subgroup element",
        })?;
        let mults = Multiplicities::decode(dec)?;
        Ok(BlsAggregate { point, mults })
    }
}

impl PublicKey {
    /// Serializes to the 96-byte compressed G2 format.
    pub fn to_compressed(&self) -> [u8; 96] {
        g2::serialize_compressed(&self.0)
    }

    /// Deserializes a compressed G2 public key with full subgroup
    /// validation; `None` on any malformed or non-subgroup encoding.
    pub fn from_compressed(bytes: &[u8; 96]) -> Option<Self> {
        g2::deserialize_compressed(bytes).map(PublicKey)
    }
}

/// A committee keyring implementing [`VoteScheme`] with real BLS crypto.
pub struct BlsScheme {
    secrets: Vec<SecretKey>,
    publics: Vec<PublicKey>,
}

impl BlsScheme {
    /// Builds a committee of `n` deterministic keypairs from a seed.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        let mut secrets = Vec::with_capacity(n);
        let mut publics = Vec::with_capacity(n);
        for i in 0..n {
            let sk = SecretKey::from_seed(&[seed, &(i as u32).to_be_bytes()].concat());
            publics.push(sk.public_key());
            secrets.push(sk);
        }
        BlsScheme { secrets, publics }
    }

    /// Public key of a member.
    pub fn public_key(&self, id: SignerId) -> Option<&PublicKey> {
        self.publics.get(id as usize)
    }
}

impl VoteScheme for BlsScheme {
    type Aggregate = BlsAggregate;

    fn sign(&self, signer: SignerId, msg: &[u8]) -> BlsAggregate {
        let sk = &self.secrets[signer as usize];
        BlsAggregate {
            point: sk.sign(msg),
            mults: Multiplicities::singleton(signer),
        }
    }

    fn combine(&self, a: &BlsAggregate, b: &BlsAggregate) -> BlsAggregate {
        BlsAggregate {
            point: a.point.add(&b.point),
            mults: a.mults.merge(&b.mults),
        }
    }

    fn scale(&self, a: &BlsAggregate, k: u64) -> BlsAggregate {
        BlsAggregate {
            point: a.point.mul_u64(k),
            mults: a.mults.scale(k),
        }
    }

    fn verify(&self, msg: &[u8], agg: &BlsAggregate) -> bool {
        if agg.mults.is_empty() {
            return agg.point.is_infinity();
        }
        // apk = Σ mult_i · pk_i
        let mut apk: G2 = Point::infinity();
        for (signer, mult) in agg.mults.iter() {
            match self.publics.get(signer as usize) {
                Some(pk) => apk = apk.add(&pk.0.mul_u64(mult)),
                None => return false,
            }
        }
        let h = g1::hash_to_curve(msg);
        crate::pairing::pairing_eq(&agg.point, &g2::generator(), &h, &apk)
    }

    fn multiplicities<'a>(&self, agg: &'a BlsAggregate) -> &'a Multiplicities {
        &agg.mults
    }

    fn committee_size(&self) -> usize {
        self.publics.len()
    }
}

impl WireScheme for BlsScheme {
    const NAME: &'static str = "bls";
    const REAL_CRYPTO: bool = true;

    fn new_committee(n: usize, seed: &[u8]) -> Self {
        BlsScheme::new(n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> BlsScheme {
        BlsScheme::new(4, b"test-committee")
    }

    #[test]
    fn single_signature_verifies() {
        let s = scheme();
        let sig = s.sign(0, b"block-1");
        assert!(s.verify(b"block-1", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let s = scheme();
        let sig = s.sign(0, b"block-1");
        assert!(!s.verify(b"block-2", &sig));
    }

    #[test]
    fn wrong_claimed_signer_rejected() {
        let s = scheme();
        let mut sig = s.sign(0, b"block-1");
        sig.mults = Multiplicities::singleton(1);
        assert!(!s.verify(b"block-1", &sig));
    }

    #[test]
    fn aggregate_with_multiplicities_verifies() {
        let s = scheme();
        let msg = b"block-7";
        // Paper Eq. (1): agg(σ1^2, σ2^2, σi^3).
        let s1 = s.scale(&s.sign(1, msg), 2);
        let s2 = s.scale(&s.sign(2, msg), 2);
        let si = s.scale(&s.sign(0, msg), 3);
        let agg = s.combine(&s.combine(&s1, &s2), &si);
        assert_eq!(agg.mults.get(0), 3);
        assert_eq!(agg.mults.get(1), 2);
        assert_eq!(agg.mults.get(2), 2);
        assert!(s.verify(msg, &agg));
    }

    #[test]
    fn tampered_multiplicity_rejected() {
        let s = scheme();
        let msg = b"block-7";
        let agg = s.combine(&s.sign(1, msg), &s.sign(2, msg));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::from_iter([(1, 2), (2, 1)]);
        assert!(s.verify(msg, &agg));
        assert!(!s.verify(msg, &forged));
    }

    #[test]
    fn omitting_a_signer_from_metadata_rejected() {
        // Indivisibility at the metadata level: the leader cannot claim an
        // aggregate contains fewer signers than it actually does.
        let s = scheme();
        let msg = b"block-9";
        let agg = s.combine(&s.sign(1, msg), &s.sign(2, msg));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::singleton(1);
        assert!(!s.verify(msg, &forged));
    }

    #[test]
    fn unknown_signer_id_rejected() {
        let s = scheme();
        let mut sig = s.sign(0, b"m");
        sig.mults = Multiplicities::singleton(99);
        assert!(!s.verify(b"m", &sig));
    }

    #[test]
    fn empty_aggregate_is_infinity_only() {
        let s = scheme();
        let empty = BlsAggregate {
            point: Point::infinity(),
            mults: Multiplicities::new(),
        };
        assert!(s.verify(b"m", &empty));
    }

    #[test]
    fn aggregate_wire_roundtrip_and_verifies() {
        use iniva_net::wire::Codec;
        let s = scheme();
        let m = b"wire";
        let agg = s.combine(&s.scale(&s.sign(1, m), 2), &s.sign(3, m));
        let frame = agg.to_frame();
        // 48-byte compressed point + 4-byte count + 2 × 12-byte entries.
        assert_eq!(frame.len(), 48 + 4 + 2 * 12);
        let back = BlsAggregate::from_frame(frame.clone()).unwrap();
        assert_eq!(back, agg);
        assert!(s.verify(m, &back));
        // Canonical: re-encoding reproduces the exact bytes.
        assert_eq!(&back.to_frame()[..], &frame[..]);
        // Truncations error cleanly.
        for cut in [0, 20, 47, 48, frame.len() - 1] {
            assert!(BlsAggregate::from_frame(frame.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn wire_rejects_tampered_point() {
        use iniva_net::wire::Codec;
        let s = scheme();
        let agg = s.sign(0, b"m");
        let frame = agg.to_frame();
        // Flip a bit in x: overwhelmingly off-curve or outside the
        // subgroup; if the mutated x still decompresses, the signature
        // must no longer verify.
        let mut bytes = frame.to_vec();
        bytes[30] ^= 0x04;
        match BlsAggregate::from_frame(bytes::Bytes::from(bytes)) {
            Err(DecodeError::Malformed { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(mutated) => assert!(!s.verify(b"m", &mutated)),
        }
    }

    #[test]
    fn empty_aggregate_roundtrips_as_infinity() {
        use iniva_net::wire::Codec;
        let empty = BlsAggregate {
            point: Point::infinity(),
            mults: Multiplicities::new(),
        };
        let back = BlsAggregate::from_frame(empty.to_frame()).unwrap();
        assert!(back.point.is_infinity());
        assert!(back.mults.is_empty());
    }

    #[test]
    fn public_key_compressed_roundtrip() {
        let s = scheme();
        let pk = s.public_key(2).unwrap();
        let back = PublicKey::from_compressed(&pk.to_compressed()).unwrap();
        assert!(back.0.eq_point(&pk.0));
        let mut bad = pk.to_compressed();
        bad[0] &= 0x7f;
        assert!(PublicKey::from_compressed(&bad).is_none());
    }
}
