//! Short-Weierstrass curve arithmetic (`y^2 = x^3 + b`, `a = 0`), generic
//! over the field, in Jacobian projective coordinates.
//!
//! Instantiated for:
//! * `G1 = E(Fp)`  with `b = 4`
//! * `G2 = E'(Fp2)` with `b = 4(1 + u)` (the sextic twist)
//! * `E(Fp12)` (only for the pairing's untwisted points)

use crate::fields::Field;
use crate::nat::Nat;

/// A point in Jacobian coordinates: `(X, Y, Z)` represents the affine point
/// `(X/Z^2, Y/Z^3)`; `Z = 0` is the point at infinity.
#[derive(Clone, Copy, Debug)]
pub struct Point<F: Field> {
    /// Jacobian X.
    pub x: F,
    /// Jacobian Y.
    pub y: F,
    /// Jacobian Z (`0` encodes infinity).
    pub z: F,
}

/// An affine point or infinity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Affine<F: Field> {
    /// The point at infinity (group identity).
    Infinity,
    /// A finite point `(x, y)`.
    Coords {
        /// Affine x.
        x: F,
        /// Affine y.
        y: F,
    },
}

impl<F: Field> Point<F> {
    /// The point at infinity.
    pub fn infinity() -> Self {
        Point {
            x: F::one(),
            y: F::one(),
            z: F::zero(),
        }
    }

    /// Lifts an affine point.
    pub fn from_affine(a: &Affine<F>) -> Self {
        match a {
            Affine::Infinity => Point::infinity(),
            Affine::Coords { x, y } => Point {
                x: *x,
                y: *y,
                z: F::one(),
            },
        }
    }

    /// True for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Normalizes to affine coordinates.
    pub fn to_affine(&self) -> Affine<F> {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let zinv = self.z.inverse().expect("nonzero z");
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(&zinv);
        Affine::Coords {
            x: self.x.mul(&zinv2),
            y: self.y.mul(&zinv3),
        }
    }

    /// Point doubling (`a = 0` formulas).
    pub fn double(&self) -> Self {
        if self.is_infinity() || self.y.is_zero() {
            return Point::infinity();
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = self.x.add(&b).square().sub(&a).sub(&c);
        d = d.double();
        let e = a.double().add(&a); // 3A
        let f = e.square();
        let x3 = f.sub(&d.double());
        let c8 = c.double().double().double();
        let y3 = e.mul(&d.sub(&x3)).sub(&c8);
        let z3 = self.y.mul(&self.z).double();
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = other.x.mul(&z1z1);
        let s1 = self.y.mul(&other.z).mul(&z2z2);
        let s2 = other.y.mul(&self.z).mul(&z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Point::infinity();
        }
        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&other.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Additive inverse.
    pub fn negate(&self) -> Self {
        Point {
            x: self.x,
            y: self.y.neg(),
            z: self.z,
        }
    }

    /// Scalar multiplication by little-endian limbs (double-and-add).
    pub fn mul_limbs(&self, scalar: &[u64]) -> Self {
        let mut acc = Point::infinity();
        for &limb in scalar.iter().rev() {
            for bit in (0..64).rev() {
                acc = acc.double();
                if (limb >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Scalar multiplication by a [`Nat`].
    pub fn mul_nat(&self, scalar: &Nat) -> Self {
        self.mul_limbs(scalar.limbs())
    }

    /// Scalar multiplication by a small integer (used for multiplicities).
    pub fn mul_u64(&self, k: u64) -> Self {
        self.mul_limbs(&[k])
    }

    /// Checks `y^2 = x^3 + b` (affine check after normalization).
    pub fn is_on_curve(&self, b: &F) -> bool {
        match self.to_affine() {
            Affine::Infinity => true,
            Affine::Coords { x, y } => y.square() == x.square().mul(&x).add(b),
        }
    }

    /// Group-element equality (compares affine forms).
    pub fn eq_point(&self, other: &Self) -> bool {
        self.to_affine() == other.to_affine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{Fp, Fp2};
    use crate::g1;
    use crate::params::curve_params;

    #[test]
    fn infinity_is_identity() {
        let g = g1::generator();
        assert!(g.add(&Point::infinity()).eq_point(&g));
        assert!(Point::<Fp>::infinity().add(&g).eq_point(&g));
        assert!(g.add(&g.negate()).is_infinity());
    }

    #[test]
    fn double_matches_add() {
        let g = g1::generator();
        assert!(g.double().eq_point(&g.add(&g)));
        let g4a = g.double().double();
        let g4b = g.add(&g).add(&g).add(&g);
        assert!(g4a.eq_point(&g4b));
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = g1::generator();
        let a = g.mul_u64(13);
        let b = g.mul_u64(29);
        assert!(a.add(&b).eq_point(&g.mul_u64(42)));
    }

    #[test]
    fn order_annihilates_generator() {
        let g = g1::generator();
        assert!(g.mul_nat(&curve_params().r).is_infinity());
    }

    #[test]
    fn mixed_field_instantiation_compiles() {
        // The same code must work over Fp2 (used for G2).
        let p: Point<Fp2> = Point::infinity();
        assert!(p.is_infinity());
    }
}
