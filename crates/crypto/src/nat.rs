//! Minimal arbitrary-precision natural numbers.
//!
//! Used only for *parameter derivation*: all BLS12-381 constants (modulus,
//! subgroup order, cofactors, Montgomery constants, final-exponentiation
//! exponent) are derived at startup from the single curve parameter
//! `z = 0xd201_0000_0001_0000` instead of being transcribed as long hex
//! literals. This keeps the implementation self-verifying: a transcription
//! error is impossible, and structural properties (bit lengths, congruences)
//! are asserted in tests.
//!
//! Performance is irrelevant here (everything runs once at startup), so the
//! implementation favours obviousness: schoolbook multiplication and
//! shift-subtract division.

use std::cmp::Ordering;

/// An arbitrary-precision natural number (little-endian 64-bit limbs).
///
/// The representation is normalized: no trailing zero limbs, and zero is the
/// empty limb vector.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    limbs: Vec<u64>,
}

impl Nat {
    /// The natural number zero.
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The natural number one.
    pub fn one() -> Self {
        Nat::from_u64(1)
    }

    /// Creates a `Nat` from a single limb.
    pub fn from_u64(v: u64) -> Self {
        let mut n = Nat { limbs: vec![v] };
        n.normalize();
        n
    }

    /// Creates a `Nat` from little-endian limbs.
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut n = Nat {
            limbs: limbs.to_vec(),
        };
        n.normalize();
        n
    }

    /// Little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Little-endian limbs padded (or truncated, which panics if lossy) to `n`.
    ///
    /// # Panics
    /// Panics if the value does not fit in `n` limbs.
    pub fn to_limbs(&self, n: usize) -> Vec<u64> {
        assert!(self.limbs.len() <= n, "value does not fit in {n} limbs");
        let mut v = self.limbs.clone();
        v.resize(n, 0);
        v
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian, bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// `self % 2^64` (0 if zero).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &Nat) -> Nat {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        out.push(carry);
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction.
    ///
    /// # Panics
    /// Panics if `other > self` (naturals have no negatives).
    pub fn sub(&self, other: &Nat) -> Nat {
        assert!(self >= other, "Nat::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            out.push(carry);
        }
        let mut r = Nat { limbs: out };
        r.normalize();
        r
    }

    /// Shift-subtract long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Nat::zero(), self.clone());
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut rem = self.clone();
        let mut quo_limbs = vec![0u64; shift / 64 + 1];
        let mut d = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if rem >= d {
                rem = rem.sub(&d);
                quo_limbs[i / 64] |= 1 << (i % 64);
            }
            d = d.shr1();
        }
        let mut q = Nat { limbs: quo_limbs };
        q.normalize();
        (q, rem)
    }

    /// Right shift by one bit.
    pub fn shr1(&self) -> Nat {
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut carry = 0u64;
        for &l in self.limbs.iter().rev() {
            out.push((l >> 1) | (carry << 63));
            carry = l & 1;
        }
        out.reverse();
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Nat) -> Nat {
        self.div_rem(m).1
    }

    /// Exact division; panics (in debug) if not exact.
    pub fn div_exact(&self, d: &Nat) -> Nat {
        let (q, r) = self.div_rem(d);
        debug_assert!(r.is_zero(), "div_exact with nonzero remainder");
        q
    }

    /// `self^2`.
    pub fn square(&self) -> Nat {
        self.mul(self)
    }

    /// Integer square root `floor(sqrt(self))` (greedy bit-by-bit).
    pub fn isqrt(&self) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        let mut root = Nat::zero();
        for i in (0..=self.bit_len() / 2).rev() {
            let cand = root.add(&Nat::one().shl(i));
            if cand.square() <= *self {
                root = cand;
            }
        }
        root
    }

    /// `self mod 2^64 == v`?
    pub fn low_is(&self, v: u64) -> bool {
        self.low_u64() == v && self.limbs.len() <= 1 || self.low_u64() == v
    }

    /// Big-endian bytes, minimal length (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Parses big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Nat {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        let mut n = Nat { limbs };
        n.normalize();
        n
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Nat::from_limbs(&[u64::MAX, u64::MAX, 3]);
        let b = Nat::from_limbs(&[7, u64::MAX]);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn mul_matches_u128() {
        let a = Nat::from_u64(0xdead_beef_1234_5678);
        let b = Nat::from_u64(0xfeed_face_8765_4321);
        let prod = (0xdead_beef_1234_5678u128) * (0xfeed_face_8765_4321u128);
        let m = a.mul(&b);
        assert_eq!(m.limbs(), &[prod as u64, (prod >> 64) as u64]);
    }

    #[test]
    fn div_rem_identity() {
        let a = Nat::from_limbs(&[0x1234, 0x5678, 0x9abc, 0xdef0]);
        let d = Nat::from_limbs(&[0xfff1, 0x3]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn division_by_one_and_self() {
        let a = Nat::from_limbs(&[5, 9, 1]);
        let (q, r) = a.div_rem(&Nat::one());
        assert_eq!(q, a);
        assert!(r.is_zero());
        let (q, r) = a.div_rem(&a);
        assert_eq!(q, Nat::one());
        assert!(r.is_zero());
    }

    #[test]
    fn shifts() {
        let a = Nat::from_u64(1);
        assert_eq!(a.shl(64), Nat::from_limbs(&[0, 1]));
        assert_eq!(a.shl(65).shr1(), Nat::from_limbs(&[0, 1]));
        assert_eq!(a.shl(3), Nat::from_u64(8));
    }

    #[test]
    fn bit_len_and_bits() {
        let a = Nat::from_limbs(&[0, 0b1010]);
        assert_eq!(a.bit_len(), 64 + 4);
        assert!(a.bit(65));
        assert!(!a.bit(64));
        assert!(a.bit(67));
        assert_eq!(Nat::zero().bit_len(), 0);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = Nat::from_limbs(&[0xdead_beef, 0x1234_5678_9abc_def0, 0x42]);
        assert_eq!(Nat::from_be_bytes(&a.to_be_bytes()), a);
        assert!(Nat::from_be_bytes(&[]).is_zero());
    }
}
