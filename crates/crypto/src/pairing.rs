//! The optimal ate pairing `e : G1 × G2 -> GT ⊂ Fp12`.
//!
//! Implementation strategy (correctness-first):
//!
//! * G2 points are **untwisted** into `E(Fp12)` once, and the Miller loop
//!   runs with plain affine arithmetic over `Fp12`. This avoids the
//!   twist-specific sparse line formulas entirely — the same generic curve
//!   math already tested on G1/G2 drives the loop.
//! * The twist type (multiplicative vs divisive) is *detected at startup* by
//!   checking which untwist candidate lands on `y^2 = x^3 + 4`, rather than
//!   asserted from literature.
//! * The final exponentiation is split into the standard easy part
//!   `(p^6 - 1)(p^2 + 1)` and a hard part computed by plain exponentiation
//!   with the derived integer `(p^4 - p^2 + 1)/r`. No hand-rolled addition
//!   chains, no Frobenius coefficient tables.
//!
//! This is slower than production pairings (tens of ms instead of ~1 ms) but
//! bit-for-bit checkable; the crate's benches measure the real costs, which
//! feed the discrete-event simulator's CPU model.

use crate::curve::Affine;
use crate::fields::{Field, Fp12, Fp2};
use crate::g1::G1;
use crate::g2::G2;
use crate::params::{curve_params, Z};
use std::sync::OnceLock;

/// An element of the target group `GT` (the order-`r` subgroup of `Fp12`).
pub type Gt = Fp12;

/// An affine point on `E(Fp12)`, the untwisted image of G2.
#[derive(Clone, Copy, Debug)]
struct Ep12 {
    x: Fp12,
    y: Fp12,
}

struct UntwistConsts {
    /// Multiplier applied to the x-coordinate (w^2 or w^-2).
    wx: Fp12,
    /// Multiplier applied to the y-coordinate (w^3 or w^-3).
    wy: Fp12,
}

fn untwist_consts() -> &'static UntwistConsts {
    static C: OnceLock<UntwistConsts> = OnceLock::new();
    C.get_or_init(|| {
        let w2 = Fp12::w().square();
        let w3 = w2.mul(&Fp12::w());
        let candidates = [
            // D-type (divisive) twist: (x/w^2, y/w^3).
            (w2.inverse().unwrap(), w3.inverse().unwrap()),
            // M-type (multiplicative) twist: (x*w^2, y*w^3).
            (w2, w3),
        ];
        let g2 = crate::g2::generator();
        for (wx, wy) in candidates {
            let c = UntwistConsts { wx, wy };
            let q = untwist_with(&c, &g2);
            let b = Fp12::from_u64(4);
            if q.y.square() == q.x.square().mul(&q.x).add(&b) {
                return c;
            }
        }
        panic!("neither twist orientation maps G2 onto E(Fp12)");
    })
}

fn embed_fp2(c: &Fp2) -> Fp12 {
    Fp12::from_fp2(*c)
}

fn untwist_with(consts: &UntwistConsts, q: &G2) -> Ep12 {
    match q.to_affine() {
        Affine::Infinity => panic!("cannot untwist infinity"),
        Affine::Coords { x, y } => Ep12 {
            x: embed_fp2(&x).mul(&consts.wx),
            y: embed_fp2(&y).mul(&consts.wy),
        },
    }
}

/// Evaluates the Miller line through `t` (tangent if `other` is `None`) at
/// the G1 point `(px, py)`, returning the line value and the next `T`.
fn line_and_step(t: &Ep12, other: Option<&Ep12>, px: &Fp12, py: &Fp12) -> (Fp12, Ep12) {
    let lambda = match other {
        None => {
            // Tangent: λ = 3x^2 / 2y.
            let num = t.x.square().mul(&Fp12::from_u64(3));
            let den = t.y.double();
            num.mul(&den.inverse().expect("2-torsion point in Miller loop"))
        }
        Some(q) => {
            let num = q.y.sub(&t.y);
            let den = q.x.sub(&t.x);
            num.mul(
                &den.inverse()
                    .expect("T = ±Q degenerate addition in Miller loop"),
            )
        }
    };
    let line = py.sub(&t.y).sub(&lambda.mul(&px.sub(&t.x)));
    let (x2, y2) = match other {
        None => {
            let x3 = lambda.square().sub(&t.x.double());
            let y3 = lambda.mul(&t.x.sub(&x3)).sub(&t.y);
            (x3, y3)
        }
        Some(q) => {
            let x3 = lambda.square().sub(&t.x).sub(&q.x);
            let y3 = lambda.mul(&t.x.sub(&x3)).sub(&t.y);
            (x3, y3)
        }
    };
    (line, Ep12 { x: x2, y: y2 })
}

/// The Miller loop `f_{|z|}(Q, P)` (inverted at the end because the BLS12-381
/// parameter `x = -z` is negative).
fn miller_loop(p: &G1, q: &G2) -> Fp12 {
    let consts = untwist_consts();
    let q_hat = untwist_with(consts, q);
    let (px, py) = match p.to_affine() {
        Affine::Infinity => unreachable!("caller filters infinity"),
        Affine::Coords { x, y } => (
            Fp12::from_fp2(Fp2::from_fp(x)),
            Fp12::from_fp2(Fp2::from_fp(y)),
        ),
    };
    let mut f = Fp12::one();
    let mut t = q_hat;
    let bits = 64 - Z.leading_zeros();
    for i in (0..bits - 1).rev() {
        f = f.square();
        let (line, t2) = line_and_step(&t, None, &px, &py);
        f = f.mul(&line);
        t = t2;
        if (Z >> i) & 1 == 1 {
            let (line, t2) = line_and_step(&t, Some(&q_hat), &px, &py);
            f = f.mul(&line);
            t = t2;
        }
    }
    // x < 0: f_{x} = 1 / f_{|x|} (vertical-line factors vanish in the final
    // exponentiation).
    f.inverse()
        .expect("Miller value is never zero for valid inputs")
}

/// The final exponentiation `f -> f^((p^12 - 1)/r)`.
pub fn final_exponentiation(f: &Fp12) -> Gt {
    let cp = curve_params();
    // Easy part: f^((p^6 - 1)(p^2 + 1)).
    let f1 = f
        .conjugate()
        .mul(&f.inverse().expect("nonzero Miller value"));
    let f2 = f1.pow_nat(&cp.p_squared).mul(&f1);
    // Hard part: ^((p^4 - p^2 + 1) / r), by plain square-and-multiply with
    // the derived exponent.
    f2.pow_nat(&cp.final_exp_hard)
}

/// Computes the pairing `e(p, q)`. Returns `1` if either input is infinity.
pub fn pairing(p: &G1, q: &G2) -> Gt {
    if p.is_infinity() || q.is_infinity() {
        return Fp12::one();
    }
    final_exponentiation(&miller_loop(p, q))
}

/// An incremental multi-pairing: accumulates Miller loops and shares one
/// final exponentiation across every accumulated pair.
///
/// This is the cost structure batch verification exploits: checking `k`
/// aggregates individually costs `2k` Miller loops and `k` final
/// exponentiations, while a random-linear-combination batch collapses to
/// one accumulator with `1 + #distinct-messages` Miller loops and a
/// *single* final exponentiation.
#[derive(Clone)]
pub struct MultiPairing {
    acc: Fp12,
    any: bool,
}

impl MultiPairing {
    /// An empty product (evaluates to `1`).
    pub fn new() -> Self {
        MultiPairing {
            acc: Fp12::one(),
            any: false,
        }
    }

    /// Folds `e(p, q)` into the product (one Miller loop, no final
    /// exponentiation yet). Infinity on either side contributes the
    /// identity and is skipped.
    pub fn add(&mut self, p: &G1, q: &G2) {
        if p.is_infinity() || q.is_infinity() {
            return;
        }
        self.acc = self.acc.mul(&miller_loop(p, q));
        self.any = true;
    }

    /// The number of Miller loops accumulated so far is not tracked;
    /// `finish` runs the one shared final exponentiation.
    pub fn finish(self) -> Gt {
        if !self.any {
            return Fp12::one();
        }
        final_exponentiation(&self.acc)
    }

    /// True when the accumulated product final-exponentiates to `1` — the
    /// shape every pairing-equation check reduces to.
    pub fn is_one(self) -> bool {
        self.finish() == Fp12::one()
    }
}

impl Default for MultiPairing {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes `∏ e(p_i, q_i)` with a single final exponentiation —
/// the building block for signature verification
/// (`e(sig, -g2) · e(H(m), pk) == 1`).
pub fn pairing_product(pairs: &[(G1, G2)]) -> Gt {
    let mut mp = MultiPairing::new();
    for (p, q) in pairs {
        mp.add(p, q);
    }
    mp.finish()
}

/// A faster pairing-equality check `e(a1, a2) == e(b1, b2)`, implemented as
/// `e(-a1, a2) · e(b1, b2) == 1` with one shared final exponentiation.
pub fn pairing_eq(a1: &G1, a2: &G2, b1: &G1, b2: &G2) -> bool {
    pairing_product(&[(a1.negate(), *a2), (*b1, *b2)]) == Fp12::one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{g1, g2};

    #[test]
    fn pairing_is_nondegenerate() {
        let e = pairing(&g1::generator(), &g2::generator());
        assert_ne!(e, Fp12::one());
        // GT has order r: e^r = 1.
        assert_eq!(e.pow_nat(&curve_params().r), Fp12::one());
    }

    #[test]
    fn bilinear_in_g1() {
        let p = g1::generator();
        let q = g2::generator();
        let e1 = pairing(&p.mul_u64(2), &q);
        let e = pairing(&p, &q);
        assert_eq!(e1, e.square());
    }

    #[test]
    fn bilinear_in_g2() {
        let p = g1::generator();
        let q = g2::generator();
        let e1 = pairing(&p, &q.mul_u64(3));
        let e = pairing(&p, &q);
        assert_eq!(e1, e.square().mul(&e));
    }

    #[test]
    fn bilinear_both_sides() {
        let p = g1::generator();
        let q = g2::generator();
        // e(5P, 7Q) == e(P, Q)^35 == e(7P, 5Q)
        let lhs = pairing(&p.mul_u64(5), &q.mul_u64(7));
        let rhs = pairing(&p.mul_u64(7), &q.mul_u64(5));
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, pairing(&p, &q).pow_limbs(&[35]));
    }

    #[test]
    fn product_of_inverse_pairs_is_one() {
        let p = g1::generator().mul_u64(11);
        let q = g2::generator().mul_u64(13);
        let prod = pairing_product(&[(p, q), (p.negate(), q)]);
        assert_eq!(prod, Fp12::one());
    }

    #[test]
    fn pairing_eq_detects_equality_and_mismatch() {
        let p = g1::generator();
        let q = g2::generator();
        assert!(pairing_eq(&p.mul_u64(6), &q, &p.mul_u64(2), &q.mul_u64(3)));
        assert!(!pairing_eq(&p.mul_u64(6), &q, &p.mul_u64(2), &q.mul_u64(4)));
    }

    #[test]
    fn multi_pairing_matches_pairing_products() {
        let p = g1::generator();
        let q = g2::generator();
        // e(2P, 3Q) · e(6P, Q)^-1 == 1, via the incremental accumulator.
        let mut mp = MultiPairing::new();
        mp.add(&p.mul_u64(2), &q.mul_u64(3));
        mp.add(&p.mul_u64(6).negate(), &q);
        assert!(mp.is_one());
        // A lopsided product is not 1.
        let mut mp = MultiPairing::new();
        mp.add(&p.mul_u64(2), &q.mul_u64(3));
        mp.add(&p.mul_u64(7).negate(), &q);
        assert!(!mp.is_one());
        // Empty accumulator is the identity.
        assert!(MultiPairing::new().is_one());
        assert_eq!(MultiPairing::new().finish(), Fp12::one());
    }

    #[test]
    fn infinity_pairs_to_one() {
        use crate::curve::Point;
        assert_eq!(pairing(&Point::infinity(), &g2::generator()), Fp12::one());
        assert_eq!(pairing(&g1::generator(), &Point::infinity()), Fp12::one());
    }
}
