//! A fast, protocol-faithful *simulation* signature scheme.
//!
//! Monte-Carlo security experiments run millions of aggregation rounds;
//! real pairings would make them infeasible. `SimScheme` models exactly the
//! algebra the protocol relies on — linear aggregation with multiplicities
//! and verification of the full multiplicity vector — using a 256-bit
//! wrapping-additive tag derived per (signer, message) with SHA-256.
//!
//! It is **not** cryptographically secure (anyone holding the committee seed
//! can forge tags); in the closed-world simulations the adversary is modeled
//! at the protocol layer, never at the crypto layer, so this changes no
//! experiment outcome. Indivisibility is enforced by the API (no
//! decomposition is exposed), mirroring the cryptographic property of BLS.

use crate::multisig::{Multiplicities, SignerId, VoteScheme, WireScheme};
use crate::sha256::sha256_many;
use iniva_net::wire::{DecodeError, Decoder, Encoder, WireDecode, WireEncode};

/// A 256-bit additive tag (two wrapping u128 lanes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Tag(pub u128, pub u128);

impl Tag {
    fn add(&self, o: &Tag) -> Tag {
        Tag(self.0.wrapping_add(o.0), self.1.wrapping_add(o.1))
    }
    fn scale(&self, k: u64) -> Tag {
        Tag(
            self.0.wrapping_mul(k as u128),
            self.1.wrapping_mul(k as u128),
        )
    }
}

/// An aggregate under [`SimScheme`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimAggregate {
    /// The aggregated tag `Σ mult_i · t_i (mod 2^128 per lane)`.
    pub tag: Tag,
    /// Claimed multiset of signers.
    pub mults: Multiplicities,
}

impl WireEncode for SimAggregate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(self.tag.0).put_u128(self.tag.1);
        self.mults.encode(enc);
    }
}

impl WireDecode for SimAggregate {
    fn decode(dec: &mut Decoder) -> Result<Self, DecodeError> {
        let tag = Tag(dec.get_u128()?, dec.get_u128()?);
        let mults = Multiplicities::decode(dec)?;
        Ok(SimAggregate { tag, mults })
    }
}

/// The simulation scheme: a committee seed plays the role of key material.
#[derive(Clone, Debug)]
pub struct SimScheme {
    n: usize,
    seed: [u8; 32],
}

impl SimScheme {
    /// Creates a scheme for a committee of `n` members.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        SimScheme {
            n,
            seed: sha256_many(&[b"iniva-sim-scheme", seed]),
        }
    }

    fn share(&self, signer: SignerId, msg: &[u8]) -> Tag {
        let d = sha256_many(&[b"share", &self.seed, &signer.to_be_bytes(), msg]);
        let lo = u128::from_be_bytes(d[..16].try_into().unwrap());
        let hi = u128::from_be_bytes(d[16..].try_into().unwrap());
        Tag(lo, hi)
    }
}

impl VoteScheme for SimScheme {
    type Aggregate = SimAggregate;

    fn sign(&self, signer: SignerId, msg: &[u8]) -> SimAggregate {
        assert!((signer as usize) < self.n, "signer outside committee");
        SimAggregate {
            tag: self.share(signer, msg),
            mults: Multiplicities::singleton(signer),
        }
    }

    fn combine(&self, a: &SimAggregate, b: &SimAggregate) -> SimAggregate {
        SimAggregate {
            tag: a.tag.add(&b.tag),
            mults: a.mults.merge(&b.mults),
        }
    }

    fn scale(&self, a: &SimAggregate, k: u64) -> SimAggregate {
        SimAggregate {
            tag: a.tag.scale(k),
            mults: a.mults.scale(k),
        }
    }

    fn verify(&self, msg: &[u8], agg: &SimAggregate) -> bool {
        let mut expect = Tag::default();
        for (signer, mult) in agg.mults.iter() {
            if signer as usize >= self.n {
                return false;
            }
            expect = expect.add(&self.share(signer, msg).scale(mult));
        }
        expect == agg.tag
    }

    fn multiplicities<'a>(&self, agg: &'a SimAggregate) -> &'a Multiplicities {
        &agg.mults
    }

    fn committee_size(&self) -> usize {
        self.n
    }
}

impl WireScheme for SimScheme {
    const NAME: &'static str = "sim";

    fn new_committee(n: usize, seed: &[u8]) -> Self {
        SimScheme::new(n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> SimScheme {
        SimScheme::new(8, b"seed")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let s = scheme();
        let sig = s.sign(3, b"msg");
        assert!(s.verify(b"msg", &sig));
        assert!(!s.verify(b"other", &sig));
    }

    #[test]
    fn aggregation_with_multiplicities() {
        let s = scheme();
        let m = b"block";
        let a = s.scale(&s.sign(1, m), 2);
        let b = s.scale(&s.sign(2, m), 2);
        let own = s.scale(&s.sign(0, m), 3);
        let agg = s.combine(&s.combine(&a, &b), &own);
        assert!(s.verify(m, &agg));
        assert_eq!(agg.mults.total(), 7);
    }

    #[test]
    fn forged_multiplicities_rejected() {
        let s = scheme();
        let m = b"block";
        let agg = s.combine(&s.sign(1, m), &s.sign(2, m));
        let mut forged = agg.clone();
        forged.mults = Multiplicities::singleton(1);
        assert!(!s.verify(m, &forged));
    }

    #[test]
    fn combine_order_irrelevant() {
        let s = scheme();
        let m = b"block";
        let (a, b, c) = (s.sign(1, m), s.sign(2, m), s.sign(3, m));
        let l = s.combine(&s.combine(&a, &b), &c);
        let r = s.combine(&a, &s.combine(&b, &c));
        assert_eq!(l, r);
        assert!(s.verify(m, &l));
    }

    #[test]
    fn aggregate_wire_roundtrip() {
        use iniva_net::wire::Codec;
        let s = scheme();
        let m = b"wire";
        let agg = s.combine(&s.scale(&s.sign(1, m), 2), &s.sign(5, m));
        let back = SimAggregate::from_frame(agg.to_frame()).unwrap();
        assert_eq!(back, agg);
        assert!(s.verify(m, &back));
        // Truncated inputs fail explicitly.
        let frame = agg.to_frame();
        for cut in [0, 5, frame.len() - 1] {
            assert!(SimAggregate::from_frame(frame.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn matches_bls_semantics_on_protocol_operations() {
        // The two backends must agree on multiplicity bookkeeping.
        use crate::bls::BlsScheme;
        let sim = SimScheme::new(3, b"x");
        let bls = BlsScheme::new(3, b"x");
        let m = b"semantics";
        let sim_agg = sim.combine(&sim.scale(&sim.sign(0, m), 2), &sim.sign(1, m));
        let bls_agg = bls.combine(&bls.scale(&bls.sign(0, m), 2), &bls.sign(1, m));
        assert_eq!(sim_agg.mults, bls_agg.mults);
        assert!(sim.verify(m, &sim_agg));
        assert!(bls.verify(m, &bls_agg));
    }
}
