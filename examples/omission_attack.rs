//! Demonstrates the targeted vote-omission attack: how often can an
//! attacker controlling a fraction `m` of the committee exclude one chosen
//! victim's vote, under the star protocol, Gosig and Iniva?
//!
//! ```sh
//! cargo run --release --example omission_attack
//! ```

use iniva_gosig::GosigConfig;
use iniva_sim::omission;

fn main() {
    let trials = 20_000;
    println!("targeted vote omission, collateral 0 — {trials} Monte-Carlo trials per cell\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "m", "star", "gosig k=2", "gosig k=2+FR", "iniva", "m^2 (Thm 4)"
    );
    for m in [0.05, 0.10, 0.15, 0.20, 0.30] {
        let star = omission::star_omission_probability(111, m, trials, 1);
        let gosig = iniva_gosig::omission_probability(&GosigConfig::paper(2, m), 0, trials, 2);
        let gosig_fr = iniva_gosig::omission_probability(
            &GosigConfig {
                free_riding: 0.3,
                ..GosigConfig::paper(2, m)
            },
            0,
            trials,
            3,
        );
        let iniva = omission::iniva_omission_probability(111, 10, m, 0, trials, 4);
        println!(
            "{m:<8.2} {star:>12.4} {gosig:>12.4} {gosig_fr:>12.4} {iniva:>12.4} {:>12.4}",
            m * m
        );
    }
    println!(
        "\nIniva reduces targeted omission from m to m² — an attacker needs to\n\
         control two specific roles (tree root L_v+1 plus the victim's parent,\n\
         or both consecutive leaders) in the same randomly shuffled view."
    );
}
