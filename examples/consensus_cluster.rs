//! Runs the paper's 21-replica cluster under increasing crash faults and
//! prints the Fig. 4 metrics (throughput, latency, failed views, QC size).
//!
//! ```sh
//! cargo run --release --example consensus_cluster
//! ```

use iniva_sim::resilience::{run, Variant};

fn main() {
    println!("21 replicas, 4 internal aggregators, crash faults randomly placed\n");
    for variant in [Variant::Delta5, Variant::Delta10, Variant::Carousel5] {
        println!("== {} ==", variant.label());
        println!(
            "{:<8} {:>14} {:>12} {:>14} {:>10}",
            "faults", "ops/s", "latency ms", "failed views %", "QC size"
        );
        for faults in 0..=4 {
            let p = run(variant, faults, 15, 7 + faults as u64);
            println!(
                "{:<8} {:>14.0} {:>12.1} {:>14.1} {:>10.2}",
                p.faults, p.throughput, p.latency_ms, p.failed_views_pct, p.qc_size
            );
        }
        println!();
    }
    println!(
        "Even with 4 of 21 replicas crashed, the 2ND-CHANCE fallback keeps the\n\
         QC above 99% of the correct processes (paper Fig. 4d)."
    );
}
