//! Runs an Iniva cluster over **real TCP sockets** — the same replica
//! state machines the simulator drives, now on a live wire — and prints
//! throughput/latency with the exact metric definitions of the simulated
//! perf harness (`iniva_consensus::PerfSummary`), side by side with a
//! simulator run of the identical configuration.
//!
//! In-process cluster (threads, ephemeral loopback ports):
//!
//! ```sh
//! cargo run --release --example live_cluster                  # n=7, 5 s
//! cargo run --release --example live_cluster -- --n 13 --duration 10
//! ```
//!
//! Scheme selection — `--scheme {sim,bls}` (default `sim`): `sim` runs
//! the calibrated stand-in scheme with its modeled CPU costs spent as
//! real time, `bls` runs **genuine BLS12-381 pairing crypto** end to end
//! — 48-byte compressed G1 aggregates (and their multiplicity tables) as
//! the actual frame bytes, subgroup-checked on every decode, ~50 ms of
//! real verification per aggregate (timers are widened accordingly; the
//! modeled cost is zeroed since the crypto now pays for itself):
//!
//! ```sh
//! cargo run --release --example live_cluster -- --scheme bls --n 4 --duration 15
//! ```
//!
//! In multi-process mode the scheme lives in the shared config (pass
//! `--scheme` to `--write-config`): every `--id` process reads it from
//! there, and a conflicting explicit `--scheme` fails by name instead of
//! stalling on mutually undecodable frames.
//!
//! Multi-process cluster from a TOML-style peer list (one terminal per
//! replica, like the Fast IC Consensus repo's per-terminal quickstart):
//!
//! ```sh
//! cargo run --release --example live_cluster -- --write-config /tmp/cluster.toml --n 4
//! cargo run --release --example live_cluster -- --config /tmp/cluster.toml --id 0
//! cargo run --release --example live_cluster -- --config /tmp/cluster.toml --id 1
//! cargo run --release --example live_cluster -- --config /tmp/cluster.toml --id 2
//! cargo run --release --example live_cluster -- --config /tmp/cluster.toml --id 3
//! ```
//!
//! Chaos demo — a seeded crash → partition → heal `FaultPlan` injected
//! into the live cluster, with the same plan replayed on the simulator:
//!
//! ```sh
//! cargo run --release --example live_cluster -- --chaos
//! ```
//!
//! Crash recovery — give a `--config/--id` replica a WAL directory and it
//! journals every commit and view to disk; `kill -9` it mid-run, rerun
//! the *same* command, and the restarted process rehydrates its committed
//! prefix from the log, fetches what it missed from the peers via state
//! transfer, and resumes voting:
//!
//! ```sh
//! cargo run --release --example live_cluster -- --config /tmp/cluster.toml --id 2 --wal-dir /tmp/iniva-wal
//! # ... kill -9 that process, then run the identical command again
//! ```
//!
//! Observability — `--metrics-dir <dir>` (any mode; in multi-process
//! mode, a `metrics_dir = "..."` key in the `[cluster]` table covers the
//! whole cluster) makes every replica trace consensus events and dump
//! `metrics-<id>.json` + `trace-<id>.jsonl` into the directory, refreshed
//! every ~2 s in `--config`/`--id` mode so killed processes leave usable
//! traces. Merge the dumps into a cross-replica per-view timeline:
//!
//! ```sh
//! cargo run --release --example live_cluster -- --chaos --metrics-dir /tmp/iniva-obs
//! cargo run --release -p iniva-bench --bin view_timeline -- /tmp/iniva-obs
//! ```
//!
//! Client ingress — `--ingress` (in-process) or a `client_listen` key in
//! the shared config (multi-process) gives every replica a client-facing
//! listener feeding a bounded fee-ordered mempool; the proposer then
//! drafts blocks from real client submits instead of the synthetic
//! open-loop model. Drive it with the `ingress_load` bench:
//!
//! ```sh
//! cargo run --release --example live_cluster -- --ingress --duration 30
//! cargo run --release -p iniva-bench --bin ingress_load   # separate terminal
//! ```
//!
//! Each ingress knob exists as a CLI flag (in-process / ad-hoc) and a
//! `[cluster]` TOML key (multi-process, shared like the peer list); in
//! `--config` mode an explicit flag that disagrees with the config fails
//! by name, exactly like `--scheme`:
//!
//! | CLI flag          | TOML key        | meaning                                      |
//! |-------------------|-----------------|----------------------------------------------|
//! | `--ingress`       | `client_listen` | enable the client tier (TOML: base address; replica `id` listens on port + id) |
//! | `--client-listen` | `client_listen` | client listen base address (`--write-config` seeds it) |
//! | `--mempool`       | `mempool`       | mempool capacity in requests                 |
//! | `--client-rate`   | `client_rate`   | per-client token refill rate, submits/second |
//! | `--client-burst`  | `client_burst`  | per-client token bucket burst                |

use iniva::protocol::{InivaConfig, InivaReplica};
use iniva_consensus::PerfSummary;
use iniva_crypto::bls::BlsScheme;
use iniva_crypto::multisig::WireScheme;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_ingress::{IngressOptions, IngressServer, Mempool, RequestSource};
use iniva_net::{NetConfig, Simulation, SECS};
use iniva_obs::{Registry, Tracer};
use iniva_storage::ChainWal;
use iniva_transport::cluster::{chaos_demo_scenario, ClusterBuilder, ObsOptions, CLUSTER_SEED};
use iniva_transport::{ClusterConfig, CpuMode, Runtime, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn iniva_config(n: usize, internal: u32, rate: u64, batch: u32, payload: u32) -> InivaConfig {
    let mut cfg = InivaConfig::for_tests(n, internal);
    cfg.request_rate = rate;
    cfg.max_batch = batch;
    cfg.payload_per_req = payload;
    cfg
}

/// The simulator run of the identical configuration, for the
/// "simulated" comparison row.
fn simulated_point(cfg: &InivaConfig, duration_secs: u64) -> PerfSummary {
    let scheme = Arc::new(SimScheme::new(cfg.n, b"live-cluster"));
    let replicas = (0..cfg.n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(NetConfig::default(), replicas);
    sim.run_until(duration_secs * SECS);
    let metrics = sim.actor(0).chain.metrics.clone();
    iniva_sim::perf::harvest(&sim, &metrics, duration_secs)
}

fn in_process<S: WireScheme>(
    mut cfg: InivaConfig,
    duration_secs: u64,
    metrics_dir: Option<&str>,
    ingress: Option<IngressOptions>,
) {
    let (n, internal, rate) = (cfg.n, cfg.internal, cfg.request_rate);
    if S::REAL_CRYPTO {
        cfg.tune_for_real_crypto();
    }
    println!(
        "== live Iniva cluster [{scheme}]: n = {n}, {internal} internal aggregators, \
         {rate} req/s offered, {duration_secs} s over loopback TCP ==",
        scheme = S::NAME
    );
    let duration = Duration::from_secs(duration_secs);
    let mut builder = ClusterBuilder::new(&cfg, duration).scheme::<S>();
    if let Some(dir) = metrics_dir {
        builder = builder.observe(ObsOptions::new(dir));
    }
    if let Some(opts) = ingress {
        builder = builder.ingress(opts);
    }
    // launch() rather than spawn(): with --ingress the client addresses
    // must be printed while the cluster is live, so clients can connect.
    let handle = builder.launch().expect("cluster starts");
    if let Some(ing) = handle.ingress() {
        println!("client ingress listening on:");
        for (id, addr) in ing.client_addrs.iter().enumerate() {
            println!("  replica {id}: {addr}");
        }
    }
    let run = handle.join().expect("cluster run");
    if let Some(ing) = &run.ingress {
        let stats = ing.mempool.stats();
        println!(
            "ingress: {} offered, {} admitted, {} duplicates, {} shed \
             ({} rate-limited, {} full), {} committed",
            stats.offered,
            stats.admitted,
            stats.duplicates,
            stats.shed_busy + stats.shed_full,
            stats.shed_busy,
            stats.shed_full,
            stats.committed,
        );
    }
    if let Some(dir) = metrics_dir {
        println!(
            "observability dumps in {dir}/ — merge with: \
             cargo run --release -p iniva-bench --bin view_timeline -- {dir}"
        );
    }

    let agreed = match run.agreed_prefix_height() {
        Ok(h) => h,
        Err(e) => panic!("SAFETY VIOLATION: {e}"),
    };
    let cpu_busy: Vec<u64> = run.nodes.iter().map(|nd| nd.runtime.busy).collect();
    let metrics = &run.nodes[0].replica.chain.metrics;
    let live = PerfSummary::from_metrics(metrics, duration_secs as f64, &cpu_busy);

    println!("{}", PerfSummary::table_header());
    if !S::REAL_CRYPTO {
        // The simulator comparison row models the same calibrated costs
        // a modeled scheme spends as real time; it has no meaningful
        // analogue for genuinely paid pairing crypto.
        let sim = simulated_point(&cfg, duration_secs);
        println!("{}", sim.table_row("simulated"));
    }
    println!("{}", live.table_row(&format!("live-tcp[{}]", S::NAME)));
    println!();
    println!("agreed committed prefix : {agreed} blocks (all {n} replicas)");
    let sent: u64 = run.nodes.iter().map(|nd| nd.transport.msgs_sent).sum();
    let bytes: u64 = run.nodes.iter().map(|nd| nd.transport.bytes_sent).sum();
    let dups: u64 = run.nodes.iter().map(|nd| nd.transport.dups_dropped).sum();
    println!("frames shipped          : {sent} ({bytes} body bytes, {dups} duplicates dropped)");
}

/// Writes one process's registry + trace dumps into `dir` (best-effort:
/// a dump failure mid-run is reported, not fatal — the consensus process
/// should outlive a full disk).
fn dump_process_obs(dir: &str, id: u32, registry: &Registry, tracer: &Tracer) {
    let metrics = std::path::Path::new(dir).join(format!("metrics-{id}.json"));
    let trace = std::path::Path::new(dir).join(format!("trace-{id}.jsonl"));
    if let Err(e) = std::fs::write(&metrics, registry.to_json()) {
        eprintln!("metrics dump failed ({}): {e}", metrics.display());
    }
    if let Err(e) = tracer.write_jsonl(&trace) {
        eprintln!("trace dump failed ({}): {e}", trace.display());
    }
}

fn one_process<S: WireScheme>(
    cluster: &ClusterConfig,
    id: u32,
    wal_dir: Option<&str>,
    metrics_dir: Option<&str>,
) {
    // The scheme is cluster-wide common knowledge (see ClusterConfig):
    // a process decoding frames under the wrong scheme would drop every
    // connection and stall silently, so mismatches die by name here.
    assert_eq!(
        cluster.scheme,
        S::NAME,
        "config says scheme = \"{}\" but this process runs \"{}\"",
        cluster.scheme,
        S::NAME
    );
    let mut cfg = iniva_config(
        cluster.n(),
        cluster.internal,
        cluster.request_rate,
        cluster.max_batch,
        cluster.payload_per_req,
    );
    if S::REAL_CRYPTO {
        cfg.tune_for_real_crypto();
    }
    let addr = cluster.addr_of(id).expect("id is in the peer list");
    let duration = Duration::from_secs(cluster.duration_secs);
    println!(
        "replica {id} of {} [{}]: listening on {addr}, running {} s",
        cluster.n(),
        S::NAME,
        cluster.duration_secs
    );
    let transport = Transport::bind(id, addr, &cluster.peer_addrs()).expect("bind listener");
    let scheme = Arc::new(S::new_committee(cluster.n(), CLUSTER_SEED));
    let scheme_handle = Arc::clone(&scheme);
    // Observability: one registry + tracer for the process, both on the
    // runtime's epoch, dumped periodically so a kill -9'd replica still
    // leaves an (almost-current) trace for `view_timeline`.
    let epoch = Instant::now();
    let node_obs = metrics_dir.map(|dir| {
        std::fs::create_dir_all(dir).expect("create metrics dir");
        (Registry::new(), Tracer::live(id, 65_536, epoch), dir)
    });
    // With a WAL directory this process is durable: it rehydrates the
    // committed prefix a previous incarnation logged (state transfer
    // closes the rest of the gap once a peer message reveals it) and
    // journals every commit and view entry from here on — the kill -9
    // + restart demo from the module docs.
    // Client ingress, when the shared config enables it: this process
    // listens for clients on `client_listen`'s port + id and drafts its
    // blocks from the mempool instead of the synthetic workload model.
    let ingress = cluster.client_addr_of(id).map(|client_addr| {
        let opts = cluster.ingress_options();
        let mempool = Arc::new(Mempool::new(&opts));
        let listener =
            std::net::TcpListener::bind(client_addr).expect("bind client ingress listener");
        let server =
            IngressServer::start(listener, Arc::clone(&mempool), &opts).expect("start ingress");
        println!("client ingress: listening on {client_addr}");
        (mempool, server)
    });
    let mut replica = match wal_dir {
        None => InivaReplica::new(id, cfg, scheme),
        Some(dir) => {
            let dir = std::path::Path::new(dir).join(format!("replica-{id}"));
            let (mut wal, recovered) = ChainWal::<S>::open(&dir).expect("open write-ahead log");
            println!(
                "WAL {}: recovered {} committed blocks, view {}",
                dir.display(),
                recovered.commits.len(),
                recovered.view
            );
            if let Some((registry, tracer, _)) = &node_obs {
                wal.set_observability(registry, tracer.clone());
            }
            let mut replica =
                InivaReplica::recover(id, cfg, scheme, recovered.commits, recovered.view);
            replica.chain.set_commit_sink(Box::new(wal));
            replica
        }
    };
    if let Some((mempool, _)) = &ingress {
        replica
            .chain
            .set_request_source(Arc::clone(mempool) as Arc<dyn RequestSource>);
    }
    let mut runtime = Runtime::with_epoch(replica, transport, CpuMode::Real, epoch);
    match &node_obs {
        None => runtime.run_for(duration),
        Some((registry, tracer, dir)) => {
            runtime
                .actor_mut()
                .set_observability(registry, tracer.clone());
            runtime.set_observability(registry);
            // Run in slices, flushing the dumps every couple of seconds.
            let deadline = Instant::now() + duration;
            while Instant::now() < deadline {
                let slice = (deadline - Instant::now()).min(Duration::from_secs(2));
                runtime.run_deadline(Instant::now() + slice, || false);
                runtime.export_stats(registry);
                runtime.actor_mut().chain.metrics.export(registry);
                dump_process_obs(dir, id, registry, tracer);
            }
        }
    }
    let (mut replica, stats, transport) = runtime.finish();
    if let Some((mempool, server)) = ingress {
        server.shutdown();
        let s = mempool.stats();
        println!(
            "client ingress: {} offered, {} admitted, {} duplicates, {} shed, {} committed",
            s.offered,
            s.admitted,
            s.duplicates,
            s.shed_busy + s.shed_full,
            s.committed,
        );
    }
    if let Some((registry, tracer, dir)) = &node_obs {
        replica.chain.metrics.export(registry);
        scheme_handle.export_observability(registry);
        dump_process_obs(dir, id, registry, tracer);
        println!("observability dumps in {dir}/ (metrics-{id}.json, trace-{id}.jsonl)");
    }

    let point = PerfSummary::from_metrics(
        &replica.chain.metrics,
        cluster.duration_secs as f64,
        &[stats.busy],
    );
    println!("{}", PerfSummary::table_header());
    println!("{}", point.table_row(&format!("live-tcp[{id}]")));
    println!(
        "committed height {} | frames sent {} | received {} | reconnects {}",
        replica.chain.committed_height(),
        transport.msgs_sent,
        transport.msgs_received,
        transport.reconnects,
    );
    let m = &replica.chain.metrics;
    if m.recovered_blocks > 0 || m.state_transfer_blocks > 0 {
        println!(
            "crash recovery: {} blocks rehydrated from the WAL, {} fetched via state transfer",
            m.recovered_blocks, m.state_transfer_blocks
        );
    }
}

/// The chaos demo: the exact scenario the acceptance test pins
/// (`iniva_transport::cluster::chaos_demo_scenario`) — crash a seeded
/// victim at t=0, cut the survivors below quorum at 2 s, heal at 3.5 s —
/// replayed on sockets and on the simulator.
fn chaos(duration_secs: u64, metrics_dir: Option<&str>) {
    let (cfg, plan, victim, o) = chaos_demo_scenario(0xC4A05);
    let n = cfg.n;
    println!(
        "== chaos: n = {n}, crash replica {victim} at 0 s, partition 3|4 at 2 s, heal at 3.5 s =="
    );

    let duration = Duration::from_secs(duration_secs);
    let mut builder = ClusterBuilder::new(&cfg, duration).faults(&plan);
    if let Some(dir) = metrics_dir {
        builder = builder.observe(ObsOptions::new(dir));
    }
    let run = builder.spawn().expect("cluster starts");
    let survivors: Vec<usize> = o.iter().map(|&id| id as usize).collect();
    let agreed = match run.agreed_prefix_height_of(&survivors) {
        Ok(h) => h,
        Err(e) => panic!("SAFETY VIOLATION: {e}"),
    };

    let scheme = Arc::new(SimScheme::new(n, b"live-cluster"));
    let replicas = (0..n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(NetConfig::default(), replicas);
    plan.run_on_sim(&mut sim, duration_secs * SECS);

    let live_m = &run.nodes[o[0] as usize].replica.chain.metrics;
    let sim_m = &sim.actor(o[0]).chain.metrics;
    println!("survivors' agreed committed prefix : {agreed} blocks");
    println!(
        "committed blocks                   : live {} vs simulated {}",
        live_m.committed_blocks, sim_m.committed_blocks
    );
    println!(
        "commits after the 3.5 s heal       : live {} vs simulated {}",
        live_m.commits_since(4 * SECS),
        sim_m.commits_since(4 * SECS)
    );
    let dropped: u64 = run.nodes.iter().map(|nd| nd.transport.faults_dropped).sum();
    let evicted: u64 = run.nodes.iter().map(|nd| nd.transport.lane_evicted).sum();
    println!("frames dropped by injected faults  : {dropped} ({evicted} shed by bounded lanes)");
    if let Some(dir) = metrics_dir {
        println!(
            "observability dumps in {dir}/ — merge with: \
             cargo run --release -p iniva-bench --bin view_timeline -- {dir}"
        );
    }
}

fn write_config(path: &str, n: usize, scheme: &str, client_listen: Option<&str>) {
    // BLS runs commit a few blocks per second of real pairing work; a
    // sub-saturation rate keeps the out-of-the-box demo readable.
    let rate = if scheme == "bls" { 200 } else { 10_000 };
    let mut text = format!(
        "# Iniva live cluster — one `--id` process per [[peers]] entry\n[cluster]\nscheme = \"{scheme}\"\ninternal = 2\nbatch = 100\npayload = 64\nrate = {rate}\nduration_secs = 10\n",
    );
    if let Some(listen) = client_listen {
        let defaults = IngressOptions::default();
        text.push_str(&format!(
            "client_listen = \"{listen}\"\nmempool = {}\nclient_rate = {}\nclient_burst = {}\n",
            defaults.capacity, defaults.rate_per_client, defaults.burst
        ));
    }
    for id in 0..n {
        text.push_str(&format!(
            "\n[[peers]]\nid = {id}\naddr = \"127.0.0.1:{}\"\n",
            7100 + id
        ));
    }
    std::fs::write(path, &text).expect("write config file");
    println!("wrote {path} for an n={n} [{scheme}] cluster on 127.0.0.1:7100..");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse = |name: &str, default: u64| -> u64 {
        flag(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} wants a number"))
            })
            .unwrap_or(default)
    };

    let scheme = flag("--scheme").unwrap_or_else(|| "sim".into());
    if scheme != "sim" && scheme != "bls" {
        panic!("--scheme wants 'sim' or 'bls', got '{scheme}'");
    }
    if let Some(path) = flag("--write-config") {
        write_config(
            &path,
            parse("--n", 4) as usize,
            &scheme,
            flag("--client-listen").as_deref(),
        );
        return;
    }
    let metrics_dir = flag("--metrics-dir");
    if args.iter().any(|a| a == "--chaos") {
        // The chaos demo's whole point is the sockets-vs-simulator
        // comparison, which only the calibrated sim scheme supports.
        assert_eq!(scheme, "sim", "--chaos compares against the simulator");
        chaos(parse("--duration", 6), metrics_dir.as_deref());
        return;
    }
    if let Some(path) = flag("--config") {
        let id = flag("--id")
            .expect("--config needs --id <replica id>")
            .parse()
            .expect("--id wants a number");
        let wal = flag("--wal-dir");
        let text = std::fs::read_to_string(&path).expect("read config file");
        let cluster: ClusterConfig = ClusterConfig::parse(&text).unwrap_or_else(|e| panic!("{e}"));
        // The config's scheme is authoritative (shared by every process);
        // an explicit --scheme must agree with it, and its absence means
        // "whatever the cluster runs".
        if let Some(requested) = flag("--scheme") {
            assert_eq!(
                requested, cluster.scheme,
                "--scheme {requested} conflicts with scheme = \"{}\" in {path}",
                cluster.scheme
            );
        }
        // The ingress knobs are cluster-wide common knowledge like the
        // scheme (every process must agree on the mempool geometry and
        // client port layout), so explicit flags follow the same rule:
        // they must match the shared config or fail by name.
        if let Some(listen) = flag("--client-listen") {
            assert_eq!(
                Some(&listen),
                cluster.client_listen.as_ref(),
                "--client-listen {listen} conflicts with client_listen = {:?} in {path}",
                cluster.client_listen
            );
        }
        for (name, key, configured) in [
            ("--mempool", "mempool", cluster.mempool),
            ("--client-rate", "client_rate", cluster.client_rate),
            ("--client-burst", "client_burst", cluster.client_burst),
        ] {
            if let Some(v) = flag(name) {
                let v: u64 = v
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} wants a number"));
                assert_eq!(
                    v, configured,
                    "{name} {v} conflicts with {key} = {configured} in {path}"
                );
            }
        }
        // A process dumps observability when the shared config says so
        // (so one key covers the whole cluster) or when this process got
        // an explicit --metrics-dir (which wins).
        let obs_dir = metrics_dir.or_else(|| cluster.metrics_dir.clone());
        match cluster.scheme.as_str() {
            "bls" => one_process::<BlsScheme>(&cluster, id, wal.as_deref(), obs_dir.as_deref()),
            _ => one_process::<SimScheme>(&cluster, id, wal.as_deref(), obs_dir.as_deref()),
        }
        return;
    }
    // BLS defaults: a smaller committee and a sub-saturation offered rate
    // (real pairing caps the commit cadence at a few blocks per second),
    // and a longer run so several commits land.
    let bls = scheme == "bls";
    let n = parse("--n", if bls { 4 } else { 7 }) as usize;
    let default_internal = ((n as f64 - 1.0).sqrt().round() as u64).max(1);
    let cfg = iniva_config(
        n,
        parse("--internal", default_internal) as u32,
        // Below the batch-100 saturation point (~6.7k committed/s for sim),
        // so the out-of-the-box run shows service latency, not queueing
        // backlog; push --rate up to study saturation.
        parse("--rate", if bls { 200 } else { 5_000 }),
        parse("--batch", 100) as u32,
        parse("--payload", 64) as u32,
    );
    let duration = parse("--duration", if bls { 15 } else { 5 });
    // --ingress bolts the client tier onto the in-process cluster: the
    // proposer drafts from a real fee-ordered mempool (initially empty —
    // drive it with the `ingress_load` bench or any ClientMsg speaker).
    let ingress = args.iter().any(|a| a == "--ingress").then(|| {
        let defaults = IngressOptions::default();
        IngressOptions {
            capacity: parse("--mempool", defaults.capacity as u64) as usize,
            rate_per_client: parse("--client-rate", defaults.rate_per_client),
            burst: parse("--client-burst", defaults.burst),
        }
    });
    match scheme.as_str() {
        "bls" => in_process::<BlsScheme>(cfg, duration, metrics_dir.as_deref(), ingress),
        _ => in_process::<SimScheme>(cfg, duration, metrics_dir.as_deref(), ingress),
    }
}
