//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example paper_figures            # everything
//! cargo run --release --example paper_figures -- fig2a   # one artifact
//! ```
//!
//! Artifacts: `table1 fig2a fig2b fig2c fig2d fig3a fig3b fig3c fig4`.

use iniva_sim::{omission, perf, resilience, reward_sim, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |k: &str| all || args.iter().any(|a| a == k);

    if want("table1") {
        println!("==================== Table I ====================");
        println!(
            "{:<16} {:>14} {:>14} {:>10} {:>20}",
            "scheme", "0-omission", "measured@10%", "inclusive", "incentive-compatible"
        );
        for r in table1::table_1(40_000, 42) {
            println!(
                "{:<16} {:>14} {:>14.4} {:>10} {:>20}",
                r.scheme,
                r.omission_formula,
                r.measured_at_10pct,
                r.inclusive,
                r.incentive_compatible
            );
        }
        println!();
    }

    if want("fig2a") {
        println!("==================== Fig. 2a: omission probability, collateral 0 ====");
        for s in omission::figure_2a(20_000, 42) {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|(m, p)| format!("m={m:.2}:{p:.4}"))
                .collect();
            println!("{:<38} {}", s.label, pts.join("  "));
        }
        println!();
    }

    if want("fig2b") {
        println!("==================== Fig. 2b: omission vs collateral (m = 5%) =======");
        for s in omission::figure_2b(10_000, 42) {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|(c, p)| format!("c={c:.0}:{p:.4}"))
                .collect();
            println!("{:<38} {}", s.label, pts.join(" "));
        }
        println!();
    }

    if want("fig2c") {
        println!("==================== Fig. 2c: reward deviation under attacks ========");
        println!(
            "{:<32} {:>6} {:>16} {:>16}",
            "series", "m", "victim dev", "attacker dev"
        );
        for r in reward_sim::figure_2c(4_000, 42) {
            println!(
                "{:<32} {:>6.2} {:>16.4} {:>16.4}",
                r.label, r.m, r.victim_deviation, r.attacker_deviation
            );
        }
        println!();
    }

    if want("fig2d") {
        println!("==================== Fig. 2d: reward lost, whole-branch collateral ==");
        println!(
            "{:<22} {:>6} {:>16} {:>16}",
            "config", "m", "victim loss", "attacker loss"
        );
        for r in reward_sim::figure_2d(4_000, 42) {
            println!(
                "{:<22} {:>6.2} {:>15.4}R {:>15.4}R",
                r.label, r.m, r.victim_loss, r.attacker_loss
            );
        }
        println!();
    }

    if want("fig3a") {
        println!("==================== Fig. 3a: throughput vs latency =================");
        let rates = [2_000, 5_000, 10_000, 20_000, 50_000, 100_000];
        for s in perf::figure_3a(&rates) {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|p| format!("({:.0} op/s, {:.1} ms)", p.throughput, p.latency_ms))
                .collect();
            println!("{:<24} {}", s.label, pts.join(" "));
        }
        println!();
    }

    if want("fig3b") {
        println!("==================== Fig. 3b: CPU usage =============================");
        println!(
            "{:<24} {:>12} {:>12} {:>14}",
            "config", "mean CPU %", "max CPU %", "throughput"
        );
        for (label, p) in perf::figure_3b() {
            println!(
                "{:<24} {:>12.1} {:>12.1} {:>14.0}",
                label, p.cpu_mean_pct, p.cpu_max_pct, p.throughput
            );
        }
        println!();
    }

    if want("fig3c") {
        println!("==================== Fig. 3c: scalability ===========================");
        for (label, series) in perf::figure_3c(&[21, 41, 61, 81, 101, 121, 141]) {
            let pts: Vec<String> = series
                .iter()
                .map(|(n, t)| format!("n={n}:{t:.0}"))
                .collect();
            println!("{:<16} {}", label, pts.join("  "));
        }
        println!();
    }

    if want("fig4") {
        println!("==================== Fig. 4: resiliency to crash faults =============");
        for (variant, pts) in resilience::figure_4(15, 42) {
            println!("-- {} --", variant.label());
            println!(
                "{:<8} {:>12} {:>12} {:>16} {:>10}",
                "faults", "ops/s", "latency ms", "failed views %", "QC size"
            );
            for p in pts {
                println!(
                    "{:<8} {:>12.0} {:>12.1} {:>16.1} {:>10.2}",
                    p.faults, p.throughput, p.latency_ms, p.failed_views_pct, p.qc_size
                );
            }
            println!();
        }
    }
}
