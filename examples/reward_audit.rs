//! Audits the Iniva reward mechanism: shows how multiplicities reveal the
//! collection path of each vote, how punishments apply, and how any process
//! can verify the leader's claimed payout.
//!
//! ```sh
//! cargo run --release --example reward_audit
//! ```

use iniva::incentives::{self, Strategy, F};
use iniva::rewards::{classify_inclusions, distribute, verify_distribution, RewardParams};
use iniva_crypto::multisig::Multiplicities;
use iniva_crypto::shuffle::Assignment;
use iniva_tree::{Topology, TreeView};

fn main() {
    // A 13-member committee: root 0, internals {1,2,3}, leaves 4..12.
    let tree =
        TreeView::with_assignment(Topology::new(13, 3).unwrap(), Assignment::identity(13), 0);
    let params = RewardParams::default();

    // A view with mixed collection paths:
    //  - internal 1 aggregated both its leaves (4, 7) -> they carry mult 2;
    //  - internal 2 aggregated one leaf (5); leaf 8 came via 2ND-CHANCE;
    //  - internal 3 crashed: its leaves (6, 9) recovered via 2ND-CHANCE;
    //  - leaves 10, 11, 12 aggregated normally; 12's branch... (10,11,12 are
    //    spread round-robin: parents 1, 2, 3 respectively).
    let mults = Multiplicities::from_iter([
        (0u32, 1u64), // root
        (1, 4),       // internal: 3 children aggregated (4, 7, 10)
        (4, 2),
        (7, 2),
        (10, 2),
        (2, 3), // internal: 2 children aggregated (5, 11)
        (5, 2),
        (11, 2),
        (8, 1),  // 2ND-CHANCE (its parent 2 timed out on it)
        (6, 1),  // 2ND-CHANCE (parent 3 crashed)
        (9, 1),  // 2ND-CHANCE
        (12, 1), // 2ND-CHANCE
    ]);

    println!("== Inclusion classification from indivisible multiplicities ==");
    for (member, inc) in classify_inclusions(&tree, &mults).iter().enumerate() {
        println!("member {member:>2}: {inc:?}");
    }

    let d = distribute(&tree, &mults, &params, 1.0);
    println!("\n== Reward shares (R = 1, b_l = 15%, b_a = 2%) ==");
    for (member, share) in d.shares.iter().enumerate() {
        println!("member {member:>2}: {share:.5}");
    }
    println!("total: {:.6}", d.shares.iter().sum::<f64>());

    println!(
        "\nverify_distribution(honest)  = {}",
        verify_distribution(&tree, &mults, &params, 1.0, &d.shares)
    );
    let mut forged = d.shares.clone();
    forged[0] += 0.01;
    forged[4] -= 0.01;
    println!(
        "verify_distribution(forged)  = {}",
        verify_distribution(&tree, &mults, &params, 1.0, &forged)
    );

    println!("\n== Incentive compatibility (Section VI) ==");
    for m in [0.1, 0.2, 0.3] {
        let ic = incentives::incentive_compatible(&params, m, F);
        let u_omit = incentives::utility_vote_omission(&params, m, F, F);
        let u_deny = incentives::utility_vote_denial(&params, m, F, m);
        println!(
            "m = {m}: compatible = {ic}, utility(vote omission) = {u_omit:+.4}, \
             utility(vote denial) = {u_deny:+.4}"
        );
    }
    let dominated = incentives::find_dominating_strategy(&params, 0.3, F, 4).is_none();
    println!(
        "Theorem 3 grid check at m = 0.3: honest strategy {} (S0 = {:?})",
        if dominated {
            "dominates"
        } else {
            "IS DOMINATED"
        },
        Strategy::HONEST
    );
}
