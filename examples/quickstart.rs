//! Quickstart: run a 21-process Iniva committee in the deterministic
//! network simulator, then audit a reward distribution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iniva::protocol::{InivaConfig, InivaReplica};
use iniva::rewards::{distribute, RewardParams};
use iniva_crypto::multisig::Multiplicities;
use iniva_crypto::sim_scheme::SimScheme;
use iniva_net::{NetConfig, Simulation, SECS};
use iniva_tree::{Role, TreeView};
use std::sync::Arc;

fn main() {
    let n = 21;
    let scheme = Arc::new(SimScheme::new(n, b"quickstart"));
    let cfg = InivaConfig::for_tests(n, 4);
    let replicas = (0..n as u32)
        .map(|id| InivaReplica::new(id, cfg.clone(), Arc::clone(&scheme)))
        .collect();
    let mut sim = Simulation::new(NetConfig::default(), replicas);
    sim.run_until(5 * SECS);

    let chain = &sim.actor(0).chain;
    println!("== Iniva quickstart (n = {n}, 4 internal aggregators) ==");
    println!("virtual time          : 5 s");
    println!("committed height      : {}", chain.committed_height());
    println!("committed requests    : {}", chain.metrics.committed_reqs);
    println!(
        "throughput            : {:.0} ops/s",
        chain.metrics.committed_reqs as f64 / 5.0
    );
    println!(
        "mean request latency  : {:.1} ms",
        chain.metrics.mean_latency() / 1e6
    );
    println!(
        "mean QC size          : {:.2} of {n} (inclusiveness)",
        chain.metrics.mean_qc_size()
    );

    // Reward audit for a representative fault-free view.
    let tree = sim.actor(0).tree_for_view(3);
    let mut mults = Multiplicities::new();
    for member in 0..n as u32 {
        match tree.role_of(member) {
            Role::Root => mults.add(member, 1),
            Role::Internal => mults.add(member, 1 + tree.children_of(member).len() as u64),
            Role::Leaf => mults.add(member, 2),
        }
    }
    let params = RewardParams::default();
    let d = distribute(&tree, &mults, &params, 1.0);
    println!("\n== Reward distribution for one fault-free block (R = 1) ==");
    print_share(&tree, &d.shares, tree.root(), "root/leader");
    let internal = tree.members_with_role(Role::Internal)[0];
    print_share(&tree, &d.shares, internal, "internal");
    let leaf = tree.members_with_role(Role::Leaf)[0];
    print_share(&tree, &d.shares, leaf, "leaf");
    println!(
        "total paid            : {:.6}",
        d.shares.iter().sum::<f64>()
    );
}

fn print_share(_tree: &TreeView, shares: &[f64], member: u32, label: &str) {
    println!(
        "member {member:>2} ({label:<11}): {:.5} of R (fair share {:.5})",
        shares[member as usize],
        1.0 / shares.len() as f64
    );
}
